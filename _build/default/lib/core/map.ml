(* The optimisation map.

   The paper describes the output of its exploration as "a map on how to
   achieve a realistic PPA": an ordered recipe of which memories to
   divide and where to insert pipelines for a target period.  The map is
   technology-agnostic - replaying it on a freshly generated netlist (or
   under a different technology model) reproduces the optimised design
   without re-running the exploration. *)

open Ggpu_hw

type edit =
  | Split_words of { cell_name : string; banks : int }
  | Split_bits of { cell_name : string; slices : int }
  | Pipeline of { net_name : string }

type t = {
  num_cus : int;
  target_period_ns : float;
  edits : edit list; (* in application order *)
}

exception Replay_error of string

let edit_to_string = function
  | Split_words { cell_name; banks } ->
      Printf.sprintf "divide %s into %d banks (by words)" cell_name banks
  | Split_bits { cell_name; slices } ->
      Printf.sprintf "divide %s into %d slices (by word size)" cell_name slices
  | Pipeline { net_name } ->
      Printf.sprintf "insert pipeline register on %s" net_name

let apply_edit netlist edit =
  match edit with
  | Split_words { cell_name; banks } -> (
      match Netlist.find_cell_by_name netlist cell_name with
      | Some cell -> Netlist.split_macro_words netlist cell ~banks
      | None ->
          raise (Replay_error (Printf.sprintf "no macro named %s" cell_name)))
  | Split_bits { cell_name; slices } -> (
      match Netlist.find_cell_by_name netlist cell_name with
      | Some cell -> Netlist.split_macro_bits netlist cell ~slices
      | None ->
          raise (Replay_error (Printf.sprintf "no macro named %s" cell_name)))
  | Pipeline { net_name } -> (
      match Netlist.find_net_by_name netlist net_name with
      | Some net -> ignore (Netlist.insert_pipeline netlist net)
      | None -> raise (Replay_error (Printf.sprintf "no net named %s" net_name)))

let apply netlist t = List.iter (apply_edit netlist) t.edits

let divisions t =
  List.length
    (List.filter
       (function Split_words _ | Split_bits _ -> true | Pipeline _ -> false)
       t.edits)

let pipelines t =
  List.length
    (List.filter (function Pipeline _ -> true | _ -> false) t.edits)

let pp fmt t =
  Format.fprintf fmt "map for %d CU at %.3f ns (%d divisions, %d pipelines):@."
    t.num_cus t.target_period_ns (divisions t) (pipelines t);
  List.iter (fun e -> Format.fprintf fmt "  - %s@." (edit_to_string e)) t.edits
