(** The GPUPlanner push-button flow (the paper's Fig. 2): RTL generation
    → design-space exploration → logic synthesis reporting → partitioned
    floorplan → routing estimate → post-route timing → spec check. *)

type implementation = {
  spec : Spec.t;
  netlist : Ggpu_hw.Netlist.t;  (** after the DSE's edits *)
  map : Map.t;
  logic_report : Ggpu_synth.Report.row;  (** a Table I row *)
  floorplan : Ggpu_layout.Floorplan.t;
  route : Ggpu_layout.Route.t;  (** Table II data *)
  post_timing : Ggpu_layout.Timing_post.t;
  achieved_mhz : float;  (** min of target and post-route achievable *)
  spec_check : (unit, Spec.violation list) result;
}

val synthesise :
  ?tech:Ggpu_tech.Tech.t ->
  Spec.t ->
  Ggpu_hw.Netlist.t * Map.t * Ggpu_synth.Report.row
(** Logic synthesis only: generate, explore, report.
    @raise Dse.Cannot_meet if the frequency is unreachable. *)

val base_macro_count : num_cus:int -> int
(** Macro count of the non-optimised design (51 + 42 per extra CU). *)

val implement : ?tech:Ggpu_tech.Tech.t -> Spec.t -> implementation
(** The full RTL-to-layout flow. *)

val pp_implementation : Format.formatter -> implementation -> unit
