(* The G-GPU instruction set.

   A RISC-style 32-bit SIMT ISA modelled on FGPU's MIPS-like ISA: general
   ALU/memory/branch instructions executed per work-item, plus the SIMT
   special registers (local id, workgroup id/offset/size) that OpenCL
   kernels read through get_local_id / get_global_id, and a workgroup
   barrier.  Branches are per-work-item; divergence is handled by the
   compute unit (see {!Ggpu_fgpu.Cu}).

   Instructions are encodable to 32-bit words and back; the assembler
   resolves labels and expands [Li] of wide immediates into [Lui]/[Ori]
   pairs, mirroring how the FGPU LLVM backend materialises constants. *)

type reg = int (* 0..31; r0 reads as zero and ignores writes *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Sltu

type cond = Eq | Ne | Lt | Ge | Ltu | Geu
type special = Lid | Wgid | Wgoff | Wgsize | Gsize

type t =
  | Alu of alu_op * reg * reg * reg (* rd <- rs1 op rs2 *)
  | Alui of alu_op * reg * reg * int32 (* rd <- rs1 op imm16 *)
  | Lui of reg * int32 (* rd <- imm16 << 16 *)
  | Li of reg * int32 (* pseudo; assembler may expand *)
  | Lw of reg * reg * int (* rd <- mem32[rs1 + off] *)
  | Sw of reg * reg * int (* mem32[rs1 + off] <- rs2 *)
  | Branch of cond * reg * reg * int (* relative offset in instructions *)
  | Jump of int (* absolute instruction index *)
  | Special of special * reg (* rd <- SIMT special value *)
  | Barrier
  | Ret (* work-item terminates *)

let num_regs = 32

let check_reg r name =
  if r < 0 || r >= num_regs then
    invalid_arg (Printf.sprintf "Fgpu_isa: register %s=%d out of range" name r)

let validate = function
  | Alu (_, rd, rs1, rs2) ->
      check_reg rd "rd";
      check_reg rs1 "rs1";
      check_reg rs2 "rs2"
  | Alui (_, rd, rs1, _) | Lw (rd, rs1, _) ->
      check_reg rd "rd";
      check_reg rs1 "rs1"
  | Sw (rs2, rs1, _) ->
      check_reg rs2 "rs2";
      check_reg rs1 "rs1"
  | Lui (rd, _) | Li (rd, _) | Special (_, rd) -> check_reg rd "rd"
  | Branch (_, rs1, rs2, _) ->
      check_reg rs1 "rs1";
      check_reg rs2 "rs2"
  | Jump _ | Barrier | Ret -> ()

(* --- Pretty printing -------------------------------------------------- *)

let alu_op_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Slt -> "slt"
  | Sltu -> "sltu"

let cond_to_string = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Ge -> "bge"
  | Ltu -> "bltu"
  | Geu -> "bgeu"

let special_to_string = function
  | Lid -> "lid"
  | Wgid -> "wgid"
  | Wgoff -> "wgoff"
  | Wgsize -> "wgsize"
  | Gsize -> "gsize"

let to_string = function
  | Alu (op, rd, rs1, rs2) ->
      Printf.sprintf "%s r%d, r%d, r%d" (alu_op_to_string op) rd rs1 rs2
  | Alui (op, rd, rs1, imm) ->
      Printf.sprintf "%si r%d, r%d, %ld" (alu_op_to_string op) rd rs1 imm
  | Lui (rd, imm) -> Printf.sprintf "lui r%d, %ld" rd imm
  | Li (rd, imm) -> Printf.sprintf "li r%d, %ld" rd imm
  | Lw (rd, rs1, off) -> Printf.sprintf "lw r%d, %d(r%d)" rd off rs1
  | Sw (rs2, rs1, off) -> Printf.sprintf "sw r%d, %d(r%d)" rs2 off rs1
  | Branch (c, rs1, rs2, off) ->
      Printf.sprintf "%s r%d, r%d, %+d" (cond_to_string c) rs1 rs2 off
  | Jump target -> Printf.sprintf "j %d" target
  | Special (sp, rd) -> Printf.sprintf "%s r%d" (special_to_string sp) rd
  | Barrier -> "barrier"
  | Ret -> "ret"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --- Encoding --------------------------------------------------------- *)

(* Word layout: [31:26] opcode | [25:21] rd | [20:16] rs1 | [15:11] rs2
   | [15:0] imm16 (imm formats).  ALU register ops share opcode 0 with a
   function code in [5:0], MIPS style. *)

exception Encode_error of string

let alu_funct = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Sll -> 8
  | Srl -> 9
  | Sra -> 10
  | Slt -> 11
  | Sltu -> 12

let alu_of_funct = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Div
  | 4 -> Rem
  | 5 -> And
  | 6 -> Or
  | 7 -> Xor
  | 8 -> Sll
  | 9 -> Srl
  | 10 -> Sra
  | 11 -> Slt
  | 12 -> Sltu
  | f -> raise (Encode_error (Printf.sprintf "bad ALU funct %d" f))

let opcode_alui op = 1 + alu_funct op (* opcodes 1..13 *)
let op_lui = 14
let op_lw = 15
let op_sw = 16

let opcode_branch = function
  | Eq -> 17
  | Ne -> 18
  | Lt -> 19
  | Ge -> 20
  | Ltu -> 21
  | Geu -> 22

let op_jump = 23

let opcode_special = function
  | Lid -> 24
  | Wgid -> 25
  | Wgoff -> 26
  | Wgsize -> 27
  | Gsize -> 28

let op_barrier = 29
let op_ret = 30

let imm16_ok v = v >= -32768l && v <= 32767l
let imm16_of_int32 v = Int32.to_int (Int32.logand v 0xFFFFl)

let sign_extend_16 v =
  let v = v land 0xFFFF in
  if v land 0x8000 <> 0 then Int32.of_int (v - 0x10000) else Int32.of_int v

let ( <<. ) = Int32.shift_left
let ( |. ) = Int32.logor

let word ~opcode ~rd ~rs1 ~rs2 ~imm16 ~funct =
  Int32.of_int (opcode land 0x3F)
  <<. 26
  |. (Int32.of_int (rd land 0x1F) <<. 21)
  |. (Int32.of_int (rs1 land 0x1F) <<. 16)
  |. Int32.of_int ((rs2 land 0x1F) lsl 11 lor (funct land 0x3F) lor (imm16 land 0xFFFF))

(* NOTE: register-ALU format uses rs2+funct (funct in [5:0], rs2 in
   [15:11]); immediate formats use the full 16-bit immediate field. *)
let encode t =
  validate t;
  match t with
  | Alu (op, rd, rs1, rs2) ->
      word ~opcode:0 ~rd ~rs1 ~rs2 ~imm16:0 ~funct:(alu_funct op)
  | Alui (op, rd, rs1, imm) ->
      (* logical immediates are zero-extended, arithmetic ones
         sign-extended; both must fit 16 bits in their convention *)
      let ok =
        match op with
        | And | Or | Xor -> imm >= 0l && imm <= 0xFFFFl
        | Add | Sub | Mul | Div | Rem | Sll | Srl | Sra | Slt | Sltu ->
            imm16_ok imm
      in
      if not ok then
        raise (Encode_error (Printf.sprintf "imm %ld out of 16-bit range" imm));
      word ~opcode:(opcode_alui op) ~rd ~rs1 ~rs2:0
        ~imm16:(imm16_of_int32 imm) ~funct:0
  | Lui (rd, imm) ->
      if imm < 0l || imm > 0xFFFFl then
        raise (Encode_error (Printf.sprintf "lui imm %ld out of range" imm));
      word ~opcode:op_lui ~rd ~rs1:0 ~rs2:0 ~imm16:(Int32.to_int imm) ~funct:0
  | Li (rd, imm) ->
      if not (imm16_ok imm) then
        raise
          (Encode_error
             (Printf.sprintf "li imm %ld needs expansion before encoding" imm));
      word ~opcode:(opcode_alui Add) ~rd ~rs1:0 ~rs2:0
        ~imm16:(imm16_of_int32 imm) ~funct:0
  | Lw (rd, rs1, off) ->
      word ~opcode:op_lw ~rd ~rs1 ~rs2:0 ~imm16:(off land 0xFFFF) ~funct:0
  | Sw (rs2, rs1, off) ->
      word ~opcode:op_sw ~rd:rs2 ~rs1 ~rs2:0 ~imm16:(off land 0xFFFF) ~funct:0
  | Branch (c, rs1, rs2, off) ->
      (* rs2 rides in the rd field: [15:0] is fully taken by the offset *)
      word ~opcode:(opcode_branch c) ~rd:rs2 ~rs1 ~rs2:0
        ~imm16:(off land 0xFFFF) ~funct:0
  | Jump target ->
      Int32.of_int (op_jump land 0x3F) <<. 26 |. Int32.of_int (target land 0x3FFFFFF)
  | Special (sp, rd) ->
      word ~opcode:(opcode_special sp) ~rd ~rs1:0 ~rs2:0 ~imm16:0 ~funct:0
  | Barrier -> word ~opcode:op_barrier ~rd:0 ~rs1:0 ~rs2:0 ~imm16:0 ~funct:0
  | Ret -> word ~opcode:op_ret ~rd:0 ~rs1:0 ~rs2:0 ~imm16:0 ~funct:0

exception Decode_error of string

let decode w =
  let bits hi lo =
    Int32.to_int (Int32.logand (Int32.shift_right_logical w lo)
                    (Int32.of_int ((1 lsl (hi - lo + 1)) - 1)))
  in
  let opcode = bits 31 26 in
  let rd = bits 25 21 in
  let rs1 = bits 20 16 in
  let rs2 = bits 15 11 in
  let funct = bits 5 0 in
  let imm16 = bits 15 0 in
  let simm = sign_extend_16 imm16 in
  let soff =
    let v = imm16 in
    if v land 0x8000 <> 0 then v - 0x10000 else v
  in
  if opcode = 0 then Alu (alu_of_funct funct, rd, rs1, rs2)
  else if opcode >= 1 && opcode <= 13 then
    let op = alu_of_funct (opcode - 1) in
    let imm =
      match op with
      | And | Or | Xor -> Int32.of_int imm16 (* zero-extended *)
      | Add | Sub | Mul | Div | Rem | Sll | Srl | Sra | Slt | Sltu -> simm
    in
    if op = Add && rs1 = 0 then Li (rd, imm) else Alui (op, rd, rs1, imm)
  else if opcode = op_lui then Lui (rd, Int32.of_int imm16)
  else if opcode = op_lw then Lw (rd, rs1, soff)
  else if opcode = op_sw then Sw (rd, rs1, soff)
  else if opcode >= 17 && opcode <= 22 then
    let c =
      match opcode with
      | 17 -> Eq
      | 18 -> Ne
      | 19 -> Lt
      | 20 -> Ge
      | 21 -> Ltu
      | _ -> Geu
    in
    Branch (c, rs1, rd, soff)
  else if opcode = op_jump then
    Jump (Int32.to_int (Int32.logand w 0x3FFFFFFl))
  else if opcode >= 24 && opcode <= 28 then
    let sp =
      match opcode with
      | 24 -> Lid
      | 25 -> Wgid
      | 26 -> Wgoff
      | 27 -> Wgsize
      | _ -> Gsize
    in
    Special (sp, rd)
  else if opcode = op_barrier then Barrier
  else if opcode = op_ret then Ret
  else raise (Decode_error (Printf.sprintf "bad opcode %d" opcode))

(* Does the instruction read / write global memory? (used by the timing
   model and the cache) *)
let is_load = function Lw _ -> true | _ -> false
let is_store = function Sw _ -> true | _ -> false

let writes_reg = function
  | Alu (_, rd, _, _)
  | Alui (_, rd, _, _)
  | Lui (rd, _)
  | Li (rd, _)
  | Lw (rd, _, _)
  | Special (_, rd) ->
      Some rd
  | Sw _ | Branch _ | Jump _ | Barrier | Ret -> None
