(** Assembler for the G-GPU ISA: label resolution and wide-constant
    expansion ([Li32] of a wide immediate becomes LUI+ORI, as the FGPU
    LLVM backend materialises constants). *)

type item =
  | Label of string
  | I of Fgpu_isa.t
  | Branch_to of Fgpu_isa.cond * Fgpu_isa.reg * Fgpu_isa.reg * string
  | Jump_to of string
  | Li32 of Fgpu_isa.reg * int32

exception Asm_error of string

val item_size : item -> int
(** Words the item assembles to (labels are 0; wide [Li32] is 2). *)

val assemble : item list -> Fgpu_isa.t array
(** @raise Asm_error on duplicate or undefined labels. *)

val pp_program : Format.formatter -> Fgpu_isa.t array -> unit
