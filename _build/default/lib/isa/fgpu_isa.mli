(** The G-GPU instruction set: a RISC-style 32-bit SIMT ISA modelled on
    FGPU's, with per-work-item branches (divergence is the compute
    unit's job), SIMT special registers, and a workgroup barrier.
    Instructions encode to 32-bit words and back. *)

type reg = int  (** 0..31; r0 reads as zero *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Sltu

type cond = Eq | Ne | Lt | Ge | Ltu | Geu
type special = Lid | Wgid | Wgoff | Wgsize | Gsize

type t =
  | Alu of alu_op * reg * reg * reg
  | Alui of alu_op * reg * reg * int32
      (** logical immediates zero-extend; arithmetic sign-extend *)
  | Lui of reg * int32
  | Li of reg * int32  (** pseudo; the assembler expands wide values *)
  | Lw of reg * reg * int
  | Sw of reg * reg * int  (** [Sw (rs2, rs1, off)]: mem[rs1+off] <- rs2 *)
  | Branch of cond * reg * reg * int  (** relative offset in instructions *)
  | Jump of int  (** absolute instruction index *)
  | Special of special * reg
  | Barrier
  | Ret

val num_regs : int

val validate : t -> unit
(** @raise Invalid_argument on out-of-range registers. *)

val alu_op_to_string : alu_op -> string
val cond_to_string : cond -> string
val special_to_string : special -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

exception Encode_error of string
exception Decode_error of string

val encode : t -> int32
(** @raise Encode_error on out-of-range immediates (including a wide
    [Li], which must be expanded by the assembler first). *)

val decode : int32 -> t
(** @raise Decode_error on an illegal opcode. *)

val is_load : t -> bool
val is_store : t -> bool
val writes_reg : t -> reg option
