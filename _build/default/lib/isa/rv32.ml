(* RV32IM subset: the baseline CPU instruction set.

   Covers the instructions the kernel compiler emits plus enough of the
   base ISA for hand-written tests: LUI, AUIPC, JAL, JALR, conditional
   branches, LW/SW, the OP-IMM and OP arithmetic groups, and the M
   extension (MUL/DIV/REM).  Encoding follows the RISC-V unprivileged
   specification exactly (R/I/S/B/U/J formats), which the round-trip
   property tests exercise. *)

type reg = int (* x0..x31 *)

type t =
  | Lui of reg * int32 (* rd <- imm20 << 12 *)
  | Auipc of reg * int32
  | Jal of reg * int (* byte offset *)
  | Jalr of reg * reg * int
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Lw of reg * reg * int
  | Sw of reg * reg * int (* Sw (rs2, rs1, off): mem[rs1+off] <- rs2 *)
  | Addi of reg * reg * int32
  | Slti of reg * reg * int32
  | Sltiu of reg * reg * int32
  | Xori of reg * reg * int32
  | Ori of reg * reg * int32
  | Andi of reg * reg * int32
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Sll of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Xor of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Or of reg * reg * reg
  | And of reg * reg * reg
  | Mul of reg * reg * reg
  | Mulh of reg * reg * reg
  | Div of reg * reg * reg
  | Divu of reg * reg * reg
  | Rem of reg * reg * reg
  | Remu of reg * reg * reg
  | Ecall (* used as "halt" by the simulator *)

exception Encode_error of string
exception Decode_error of string

let check_reg r =
  if r < 0 || r > 31 then
    raise (Encode_error (Printf.sprintf "register x%d out of range" r))

let to_string t =
  let r = Printf.sprintf in
  match t with
  | Lui (rd, imm) -> r "lui x%d, %ld" rd imm
  | Auipc (rd, imm) -> r "auipc x%d, %ld" rd imm
  | Jal (rd, off) -> r "jal x%d, %d" rd off
  | Jalr (rd, rs1, off) -> r "jalr x%d, %d(x%d)" rd off rs1
  | Beq (a, b, off) -> r "beq x%d, x%d, %d" a b off
  | Bne (a, b, off) -> r "bne x%d, x%d, %d" a b off
  | Blt (a, b, off) -> r "blt x%d, x%d, %d" a b off
  | Bge (a, b, off) -> r "bge x%d, x%d, %d" a b off
  | Bltu (a, b, off) -> r "bltu x%d, x%d, %d" a b off
  | Bgeu (a, b, off) -> r "bgeu x%d, x%d, %d" a b off
  | Lw (rd, rs1, off) -> r "lw x%d, %d(x%d)" rd off rs1
  | Sw (rs2, rs1, off) -> r "sw x%d, %d(x%d)" rs2 off rs1
  | Addi (rd, rs1, i) -> r "addi x%d, x%d, %ld" rd rs1 i
  | Slti (rd, rs1, i) -> r "slti x%d, x%d, %ld" rd rs1 i
  | Sltiu (rd, rs1, i) -> r "sltiu x%d, x%d, %ld" rd rs1 i
  | Xori (rd, rs1, i) -> r "xori x%d, x%d, %ld" rd rs1 i
  | Ori (rd, rs1, i) -> r "ori x%d, x%d, %ld" rd rs1 i
  | Andi (rd, rs1, i) -> r "andi x%d, x%d, %ld" rd rs1 i
  | Slli (rd, rs1, sh) -> r "slli x%d, x%d, %d" rd rs1 sh
  | Srli (rd, rs1, sh) -> r "srli x%d, x%d, %d" rd rs1 sh
  | Srai (rd, rs1, sh) -> r "srai x%d, x%d, %d" rd rs1 sh
  | Add (rd, a, b) -> r "add x%d, x%d, x%d" rd a b
  | Sub (rd, a, b) -> r "sub x%d, x%d, x%d" rd a b
  | Sll (rd, a, b) -> r "sll x%d, x%d, x%d" rd a b
  | Slt (rd, a, b) -> r "slt x%d, x%d, x%d" rd a b
  | Sltu (rd, a, b) -> r "sltu x%d, x%d, x%d" rd a b
  | Xor (rd, a, b) -> r "xor x%d, x%d, x%d" rd a b
  | Srl (rd, a, b) -> r "srl x%d, x%d, x%d" rd a b
  | Sra (rd, a, b) -> r "sra x%d, x%d, x%d" rd a b
  | Or (rd, a, b) -> r "or x%d, x%d, x%d" rd a b
  | And (rd, a, b) -> r "and x%d, x%d, x%d" rd a b
  | Mul (rd, a, b) -> r "mul x%d, x%d, x%d" rd a b
  | Mulh (rd, a, b) -> r "mulh x%d, x%d, x%d" rd a b
  | Div (rd, a, b) -> r "div x%d, x%d, x%d" rd a b
  | Divu (rd, a, b) -> r "divu x%d, x%d, x%d" rd a b
  | Rem (rd, a, b) -> r "rem x%d, x%d, x%d" rd a b
  | Remu (rd, a, b) -> r "remu x%d, x%d, x%d" rd a b
  | Ecall -> "ecall"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --- Encoding: standard RISC-V formats -------------------------------- *)

let mask n = (1 lsl n) - 1

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  check_reg rd;
  check_reg rs1;
  check_reg rs2;
  Int32.of_int
    ((funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
    lor (rd lsl 7) lor opcode)

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  check_reg rd;
  check_reg rs1;
  if imm < -2048 || imm > 2047 then
    raise (Encode_error (Printf.sprintf "I-imm %d out of range" imm));
  Int32.of_int
    (((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
    lor (rd lsl 7) lor opcode)

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  check_reg rs1;
  check_reg rs2;
  if imm < -2048 || imm > 2047 then
    raise (Encode_error (Printf.sprintf "S-imm %d out of range" imm));
  let imm = imm land 0xFFF in
  Int32.of_int
    (((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
    lor ((imm land mask 5) lsl 7) lor opcode)

let b_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  check_reg rs1;
  check_reg rs2;
  if imm < -4096 || imm > 4094 || imm land 1 <> 0 then
    raise (Encode_error (Printf.sprintf "B-imm %d out of range" imm));
  let imm = imm land 0x1FFF in
  let bit n = (imm lsr n) land 1 in
  Int32.of_int
    ((bit 12 lsl 31)
    lor (((imm lsr 5) land mask 6) lsl 25)
    lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
    lor (((imm lsr 1) land mask 4) lsl 8)
    lor (bit 11 lsl 7) lor opcode)

let u_type ~imm ~rd ~opcode =
  check_reg rd;
  if imm < 0l || imm > 0xFFFFFl then
    raise (Encode_error (Printf.sprintf "U-imm %ld out of range" imm));
  Int32.logor (Int32.shift_left imm 12) (Int32.of_int ((rd lsl 7) lor opcode))

let j_type ~imm ~rd ~opcode =
  check_reg rd;
  if imm < -1048576 || imm > 1048574 || imm land 1 <> 0 then
    raise (Encode_error (Printf.sprintf "J-imm %d out of range" imm));
  let imm = imm land 0x1FFFFF in
  let bit n = (imm lsr n) land 1 in
  Int32.of_int
    ((bit 20 lsl 31)
    lor (((imm lsr 1) land mask 10) lsl 21)
    lor (bit 11 lsl 20)
    lor (((imm lsr 12) land mask 8) lsl 12)
    lor (rd lsl 7) lor opcode)

let op_lui = 0x37
let op_auipc = 0x17
let op_jal = 0x6F
let op_jalr = 0x67
let op_branch = 0x63
let op_load = 0x03
let op_store = 0x23
let op_imm = 0x13
let op_op = 0x33
let op_system = 0x73

let encode t =
  match t with
  | Lui (rd, imm) -> u_type ~imm ~rd ~opcode:op_lui
  | Auipc (rd, imm) -> u_type ~imm ~rd ~opcode:op_auipc
  | Jal (rd, off) -> j_type ~imm:off ~rd ~opcode:op_jal
  | Jalr (rd, rs1, off) -> i_type ~imm:off ~rs1 ~funct3:0 ~rd ~opcode:op_jalr
  | Beq (a, b, off) -> b_type ~imm:off ~rs2:b ~rs1:a ~funct3:0 ~opcode:op_branch
  | Bne (a, b, off) -> b_type ~imm:off ~rs2:b ~rs1:a ~funct3:1 ~opcode:op_branch
  | Blt (a, b, off) -> b_type ~imm:off ~rs2:b ~rs1:a ~funct3:4 ~opcode:op_branch
  | Bge (a, b, off) -> b_type ~imm:off ~rs2:b ~rs1:a ~funct3:5 ~opcode:op_branch
  | Bltu (a, b, off) ->
      b_type ~imm:off ~rs2:b ~rs1:a ~funct3:6 ~opcode:op_branch
  | Bgeu (a, b, off) ->
      b_type ~imm:off ~rs2:b ~rs1:a ~funct3:7 ~opcode:op_branch
  | Lw (rd, rs1, off) -> i_type ~imm:off ~rs1 ~funct3:2 ~rd ~opcode:op_load
  | Sw (rs2, rs1, off) -> s_type ~imm:off ~rs2 ~rs1 ~funct3:2 ~opcode:op_store
  | Addi (rd, rs1, i) ->
      i_type ~imm:(Int32.to_int i) ~rs1 ~funct3:0 ~rd ~opcode:op_imm
  | Slti (rd, rs1, i) ->
      i_type ~imm:(Int32.to_int i) ~rs1 ~funct3:2 ~rd ~opcode:op_imm
  | Sltiu (rd, rs1, i) ->
      i_type ~imm:(Int32.to_int i) ~rs1 ~funct3:3 ~rd ~opcode:op_imm
  | Xori (rd, rs1, i) ->
      i_type ~imm:(Int32.to_int i) ~rs1 ~funct3:4 ~rd ~opcode:op_imm
  | Ori (rd, rs1, i) ->
      i_type ~imm:(Int32.to_int i) ~rs1 ~funct3:6 ~rd ~opcode:op_imm
  | Andi (rd, rs1, i) ->
      i_type ~imm:(Int32.to_int i) ~rs1 ~funct3:7 ~rd ~opcode:op_imm
  | Slli (rd, rs1, sh) -> i_type ~imm:sh ~rs1 ~funct3:1 ~rd ~opcode:op_imm
  | Srli (rd, rs1, sh) -> i_type ~imm:sh ~rs1 ~funct3:5 ~rd ~opcode:op_imm
  | Srai (rd, rs1, sh) ->
      i_type ~imm:(sh lor 0x400) ~rs1 ~funct3:5 ~rd ~opcode:op_imm
  | Add (rd, a, b) -> r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:0 ~rd ~opcode:op_op
  | Sub (rd, a, b) ->
      r_type ~funct7:0x20 ~rs2:b ~rs1:a ~funct3:0 ~rd ~opcode:op_op
  | Sll (rd, a, b) -> r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:1 ~rd ~opcode:op_op
  | Slt (rd, a, b) -> r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:2 ~rd ~opcode:op_op
  | Sltu (rd, a, b) ->
      r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:3 ~rd ~opcode:op_op
  | Xor (rd, a, b) -> r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:4 ~rd ~opcode:op_op
  | Srl (rd, a, b) -> r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:5 ~rd ~opcode:op_op
  | Sra (rd, a, b) ->
      r_type ~funct7:0x20 ~rs2:b ~rs1:a ~funct3:5 ~rd ~opcode:op_op
  | Or (rd, a, b) -> r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:6 ~rd ~opcode:op_op
  | And (rd, a, b) -> r_type ~funct7:0 ~rs2:b ~rs1:a ~funct3:7 ~rd ~opcode:op_op
  | Mul (rd, a, b) -> r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:0 ~rd ~opcode:op_op
  | Mulh (rd, a, b) ->
      r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:1 ~rd ~opcode:op_op
  | Div (rd, a, b) -> r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:4 ~rd ~opcode:op_op
  | Divu (rd, a, b) ->
      r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:5 ~rd ~opcode:op_op
  | Rem (rd, a, b) -> r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:6 ~rd ~opcode:op_op
  | Remu (rd, a, b) ->
      r_type ~funct7:1 ~rs2:b ~rs1:a ~funct3:7 ~rd ~opcode:op_op
  | Ecall -> Int32.of_int op_system

(* --- Decoding --------------------------------------------------------- *)

let decode w =
  let wi = Int32.to_int (Int32.logand w 0xFFFFFFFFl) in
  let bits hi lo = (wi lsr lo) land mask (hi - lo + 1) in
  let opcode = bits 6 0 in
  let rd = bits 11 7 in
  let funct3 = bits 14 12 in
  let rs1 = bits 19 15 in
  let rs2 = bits 24 20 in
  let funct7 = bits 31 25 in
  let sign_extend v bits_n =
    if v land (1 lsl (bits_n - 1)) <> 0 then v - (1 lsl bits_n) else v
  in
  let i_imm = sign_extend (bits 31 20) 12 in
  let s_imm = sign_extend ((bits 31 25 lsl 5) lor bits 11 7) 12 in
  let b_imm =
    sign_extend
      ((bits 31 31 lsl 12) lor (bits 7 7 lsl 11) lor (bits 30 25 lsl 5)
      lor (bits 11 8 lsl 1))
      13
  in
  let u_imm = Int32.of_int (bits 31 12) in
  let j_imm =
    sign_extend
      ((bits 31 31 lsl 20) lor (bits 19 12 lsl 12) lor (bits 20 20 lsl 11)
      lor (bits 30 21 lsl 1))
      21
  in
  let bad () =
    raise
      (Decode_error
         (Printf.sprintf "cannot decode word 0x%08lx (opcode 0x%02x)" w opcode))
  in
  match opcode with
  | 0x37 -> Lui (rd, u_imm)
  | 0x17 -> Auipc (rd, u_imm)
  | 0x6F -> Jal (rd, j_imm)
  | 0x67 -> Jalr (rd, rs1, i_imm)
  | 0x63 -> (
      match funct3 with
      | 0 -> Beq (rs1, rs2, b_imm)
      | 1 -> Bne (rs1, rs2, b_imm)
      | 4 -> Blt (rs1, rs2, b_imm)
      | 5 -> Bge (rs1, rs2, b_imm)
      | 6 -> Bltu (rs1, rs2, b_imm)
      | 7 -> Bgeu (rs1, rs2, b_imm)
      | _ -> bad ())
  | 0x03 -> if funct3 = 2 then Lw (rd, rs1, i_imm) else bad ()
  | 0x23 -> if funct3 = 2 then Sw (rs2, rs1, s_imm) else bad ()
  | 0x13 -> (
      match funct3 with
      | 0 -> Addi (rd, rs1, Int32.of_int i_imm)
      | 2 -> Slti (rd, rs1, Int32.of_int i_imm)
      | 3 -> Sltiu (rd, rs1, Int32.of_int i_imm)
      | 4 -> Xori (rd, rs1, Int32.of_int i_imm)
      | 6 -> Ori (rd, rs1, Int32.of_int i_imm)
      | 7 -> Andi (rd, rs1, Int32.of_int i_imm)
      | 1 -> Slli (rd, rs1, rs2)
      | 5 -> if funct7 land 0x20 <> 0 then Srai (rd, rs1, rs2) else Srli (rd, rs1, rs2)
      | _ -> bad ())
  | 0x33 -> (
      match (funct7, funct3) with
      | 0, 0 -> Add (rd, rs1, rs2)
      | 0x20, 0 -> Sub (rd, rs1, rs2)
      | 0, 1 -> Sll (rd, rs1, rs2)
      | 0, 2 -> Slt (rd, rs1, rs2)
      | 0, 3 -> Sltu (rd, rs1, rs2)
      | 0, 4 -> Xor (rd, rs1, rs2)
      | 0, 5 -> Srl (rd, rs1, rs2)
      | 0x20, 5 -> Sra (rd, rs1, rs2)
      | 0, 6 -> Or (rd, rs1, rs2)
      | 0, 7 -> And (rd, rs1, rs2)
      | 1, 0 -> Mul (rd, rs1, rs2)
      | 1, 1 -> Mulh (rd, rs1, rs2)
      | 1, 4 -> Div (rd, rs1, rs2)
      | 1, 5 -> Divu (rd, rs1, rs2)
      | 1, 6 -> Rem (rd, rs1, rs2)
      | 1, 7 -> Remu (rd, rs1, rs2)
      | _ -> bad ())
  | 0x73 -> Ecall
  | _ -> bad ()

let is_load = function Lw _ -> true | _ -> false
let is_store = function Sw _ -> true | _ -> false

let is_branch = function
  | Beq _ | Bne _ | Blt _ | Bge _ | Bltu _ | Bgeu _ | Jal _ | Jalr _ -> true
  | _ -> false
