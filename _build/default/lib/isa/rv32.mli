(** RV32IM subset: the baseline CPU instruction set, encoded per the
    RISC-V unprivileged specification (R/I/S/B/U/J formats). [Ecall]
    doubles as "halt" in the simulator. *)

type reg = int  (** x0..x31 *)

type t =
  | Lui of reg * int32
  | Auipc of reg * int32
  | Jal of reg * int  (** byte offset *)
  | Jalr of reg * reg * int
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Lw of reg * reg * int
  | Sw of reg * reg * int  (** [Sw (rs2, rs1, off)]: mem[rs1+off] <- rs2 *)
  | Addi of reg * reg * int32
  | Slti of reg * reg * int32
  | Sltiu of reg * reg * int32
  | Xori of reg * reg * int32
  | Ori of reg * reg * int32
  | Andi of reg * reg * int32
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Sll of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Xor of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Or of reg * reg * reg
  | And of reg * reg * reg
  | Mul of reg * reg * reg
  | Mulh of reg * reg * reg
  | Div of reg * reg * reg
  | Divu of reg * reg * reg
  | Rem of reg * reg * reg
  | Remu of reg * reg * reg
  | Ecall

exception Encode_error of string
exception Decode_error of string

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val encode : t -> int32
(** @raise Encode_error on out-of-range registers or immediates. *)

val decode : int32 -> t
(** @raise Decode_error on words outside the supported subset. *)

val is_load : t -> bool
val is_store : t -> bool
val is_branch : t -> bool
