(* Assembler for the G-GPU ISA: label resolution and constant expansion.

   Programs are written as a list of items mixing labels, raw
   instructions and label-targeting control flow.  [assemble] performs
   two passes: the first sizes every item (an [Li32] of a wide constant
   expands to a [Lui]/[Ori] pair), the second resolves labels into
   relative branch offsets and absolute jump targets. *)

type item =
  | Label of string
  | I of Fgpu_isa.t
  | Branch_to of Fgpu_isa.cond * Fgpu_isa.reg * Fgpu_isa.reg * string
  | Jump_to of string
  | Li32 of Fgpu_isa.reg * int32 (* expanded as needed *)

exception Asm_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt

let imm16_ok v = v >= -32768l && v <= 32767l

let item_size = function
  | Label _ -> 0
  | I _ | Branch_to _ | Jump_to _ -> 1
  | Li32 (_, imm) -> if imm16_ok imm then 1 else 2

let assemble items =
  (* pass 1: label addresses *)
  let labels = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun item ->
      (match item with
      | Label name ->
          if Hashtbl.mem labels name then err "duplicate label %s" name;
          Hashtbl.replace labels name !pc
      | I _ | Branch_to _ | Jump_to _ | Li32 _ -> ());
      pc := !pc + item_size item)
    items;
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some addr -> addr
    | None -> err "undefined label %s" name
  in
  (* pass 2: emission *)
  let out = ref [] in
  let pc = ref 0 in
  let emit insn =
    Fgpu_isa.validate insn;
    out := insn :: !out;
    incr pc
  in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | I insn -> emit insn
      | Branch_to (c, rs1, rs2, name) ->
          let off = resolve name - (!pc + 1) in
          emit (Fgpu_isa.Branch (c, rs1, rs2, off))
      | Jump_to name -> emit (Fgpu_isa.Jump (resolve name))
      | Li32 (rd, imm) ->
          if imm16_ok imm then emit (Fgpu_isa.Li (rd, imm))
          else begin
            let hi = Int32.shift_right_logical imm 16 in
            let lo = Int32.logand imm 0xFFFFl in
            emit (Fgpu_isa.Lui (rd, hi));
            if lo <> 0l then emit (Fgpu_isa.Alui (Fgpu_isa.Or, rd, rd, lo))
            else emit (Fgpu_isa.Alui (Fgpu_isa.Or, rd, rd, 0l))
          end)
    items;
  Array.of_list (List.rev !out)

let pp_program fmt program =
  Array.iteri
    (fun i insn -> Format.fprintf fmt "%4d: %s@." i (Fgpu_isa.to_string insn))
    program
