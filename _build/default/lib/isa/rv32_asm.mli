(** Assembler for RV32: label resolution (branches and JAL are
    PC-relative byte offsets) and wide-constant expansion with the
    standard LUI/ADDI carry fix-up. *)

type item =
  | Label of string
  | I of Rv32.t
  | Beq_to of Rv32.reg * Rv32.reg * string
  | Bne_to of Rv32.reg * Rv32.reg * string
  | Blt_to of Rv32.reg * Rv32.reg * string
  | Bge_to of Rv32.reg * Rv32.reg * string
  | Bltu_to of Rv32.reg * Rv32.reg * string
  | Bgeu_to of Rv32.reg * Rv32.reg * string
  | Jal_to of Rv32.reg * string
  | Li32 of Rv32.reg * int32

exception Asm_error of string

val item_size : item -> int
(** Bytes the item assembles to. *)

val split_hi_lo : int32 -> int32 * int32
(** [(hi20, lo12)] with [(hi20 << 12) + sext(lo12)] = the input. *)

val assemble : item list -> Rv32.t array
(** @raise Asm_error on duplicate or undefined labels. *)

val pp_program : Format.formatter -> Rv32.t array -> unit
