lib/isa/rv32_asm.ml: Array Format Hashtbl Int32 List Printf Rv32
