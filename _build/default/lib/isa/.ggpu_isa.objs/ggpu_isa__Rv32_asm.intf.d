lib/isa/rv32_asm.mli: Format Rv32
