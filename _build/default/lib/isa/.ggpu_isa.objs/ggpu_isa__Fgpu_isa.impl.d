lib/isa/fgpu_isa.ml: Format Int32 Printf
