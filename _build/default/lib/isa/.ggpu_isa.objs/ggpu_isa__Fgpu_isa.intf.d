lib/isa/fgpu_isa.mli: Format
