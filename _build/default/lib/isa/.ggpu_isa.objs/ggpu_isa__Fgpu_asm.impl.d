lib/isa/fgpu_asm.ml: Array Fgpu_isa Format Hashtbl Int32 List Printf
