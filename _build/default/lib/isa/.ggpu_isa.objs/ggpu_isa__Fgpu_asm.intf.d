lib/isa/fgpu_asm.mli: Fgpu_isa Format
