lib/isa/rv32.ml: Format Int32 Printf
