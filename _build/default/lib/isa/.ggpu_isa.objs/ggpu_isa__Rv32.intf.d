lib/isa/rv32.mli: Format
