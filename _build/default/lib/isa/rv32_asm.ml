(* Assembler for RV32: label resolution and wide-constant expansion.

   Control-flow items name labels; [assemble] resolves them into byte
   offsets (branches, JAL are PC-relative).  [Li32] materialises an
   arbitrary 32-bit constant as LUI+ADDI with the standard carry fix-up
   for a negative low part. *)

type item =
  | Label of string
  | I of Rv32.t
  | Beq_to of Rv32.reg * Rv32.reg * string
  | Bne_to of Rv32.reg * Rv32.reg * string
  | Blt_to of Rv32.reg * Rv32.reg * string
  | Bge_to of Rv32.reg * Rv32.reg * string
  | Bltu_to of Rv32.reg * Rv32.reg * string
  | Bgeu_to of Rv32.reg * Rv32.reg * string
  | Jal_to of Rv32.reg * string
  | Li32 of Rv32.reg * int32

exception Asm_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt
let fits_imm12 v = v >= -2048l && v <= 2047l

let item_size = function
  | Label _ -> 0
  | I _ | Beq_to _ | Bne_to _ | Blt_to _ | Bge_to _ | Bltu_to _ | Bgeu_to _
  | Jal_to _ ->
      4
  | Li32 (_, imm) -> if fits_imm12 imm then 4 else 8

(* Split a 32-bit constant into (hi20, lo12) such that
   (hi20 << 12) + sext(lo12) = imm. *)
let split_hi_lo imm =
  let lo = Int32.logand imm 0xFFFl in
  let lo = if Int32.compare lo 0x800l >= 0 then Int32.sub lo 0x1000l else lo in
  let hi =
    Int32.logand (Int32.shift_right_logical (Int32.sub imm lo) 12) 0xFFFFFl
  in
  (hi, lo)

let assemble items =
  let labels = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun item ->
      (match item with
      | Label name ->
          if Hashtbl.mem labels name then err "duplicate label %s" name;
          Hashtbl.replace labels name !pc
      | _ -> ());
      pc := !pc + item_size item)
    items;
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some addr -> addr
    | None -> err "undefined label %s" name
  in
  let out = ref [] in
  let pc = ref 0 in
  let emit insn =
    out := insn :: !out;
    pc := !pc + 4
  in
  let branch mk name =
    let off = resolve name - !pc in
    emit (mk off)
  in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | I insn -> emit insn
      | Beq_to (a, b, l) -> branch (fun o -> Rv32.Beq (a, b, o)) l
      | Bne_to (a, b, l) -> branch (fun o -> Rv32.Bne (a, b, o)) l
      | Blt_to (a, b, l) -> branch (fun o -> Rv32.Blt (a, b, o)) l
      | Bge_to (a, b, l) -> branch (fun o -> Rv32.Bge (a, b, o)) l
      | Bltu_to (a, b, l) -> branch (fun o -> Rv32.Bltu (a, b, o)) l
      | Bgeu_to (a, b, l) -> branch (fun o -> Rv32.Bgeu (a, b, o)) l
      | Jal_to (rd, l) -> branch (fun o -> Rv32.Jal (rd, o)) l
      | Li32 (rd, imm) ->
          if fits_imm12 imm then emit (Rv32.Addi (rd, 0, imm))
          else begin
            let hi, lo = split_hi_lo imm in
            emit (Rv32.Lui (rd, hi));
            emit (Rv32.Addi (rd, rd, lo))
          end)
    items;
  Array.of_list (List.rev !out)

let pp_program fmt program =
  Array.iteri
    (fun i insn ->
      Format.fprintf fmt "%4x: %s@." (i * 4) (Rv32.to_string insn))
    program
