(** Cells: combinational operators, flip-flop banks, or SRAM macros.

    A cell carries a [count] multiplicity so that regular replicated
    datapath structure (e.g. 8 identical processing elements) can be
    represented once; statistics multiply by [count] while timing analyses
    the representative instance, which is exact for replicated logic. *)

type kind =
  | Comb of Op.t
  | Dff  (** bank of flip-flops, one per output bit *)
  | Macro of Macro_spec.t

type t

val make :
  id:int ->
  name:string ->
  region:string ->
  kind:kind ->
  inputs:Net.t list ->
  outputs:Net.t list ->
  count:int ->
  t
(** Used by {!Netlist}; not intended for direct use.
    @raise Invalid_argument on [count < 1] or a comb/Dff cell without
    outputs. *)

val id : t -> int
val name : t -> string

val region : t -> string
(** Hierarchical placement region, e.g. ["cu0/pe3"].  The floorplanner
    groups cells by the leading path segment. *)

val kind : t -> kind
val inputs : t -> Net.t list
val outputs : t -> Net.t list
val count : t -> int
val is_sequential : t -> bool
val is_comb : t -> bool
val is_macro : t -> bool

val output_width : t -> int
(** Sum of output net widths of the representative instance. *)

val ff_bits : t -> int
(** Flip-flop bits contributed ([count] included); 0 unless [Dff]. *)

val comb_gates : t -> int
(** Equivalent gate count contributed ([count] included); 0 unless comb. *)

val macro_spec : t -> Macro_spec.t option
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
