(** SRAM macro specifications.

    Geometry (words x bits) and port count of a memory-compiler macro.
    Legal ranges mirror the paper's 65 nm memory compiler: 16-65536 words,
    2-144 bits, single- or dual-port. *)

type ports = Single_port | Dual_port
type t

exception Out_of_range of string

val min_words : int
val max_words : int
val min_bits : int
val max_bits : int

val make : words:int -> bits:int -> ports:ports -> t
(** @raise Out_of_range if the geometry is outside compiler limits. *)

val words : t -> int
val bits : t -> int
val ports : t -> ports
val total_bits : t -> int
val is_dual_port : t -> bool

val address_bits : t -> int
(** Number of address lines, [clog2 words]. *)

val split_words : t -> banks:int -> t
(** Geometry of one bank after dividing the word count by [banks].
    @raise Invalid_argument if [banks < 2] or does not divide the words.
    @raise Out_of_range if the resulting bank is below compiler limits. *)

val split_bits : t -> slices:int -> t
(** Geometry of one slice after dividing the word width by [slices].
    @raise Invalid_argument if [slices < 2] or does not divide the bits.
    @raise Out_of_range if the resulting slice is below compiler limits. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
