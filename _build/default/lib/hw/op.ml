(* Combinational operator catalogue.

   Each operator is characterised, independently of any technology, by two
   structural quantities derived from its canonical gate-level
   implementation at a given bit width:

   - [levels]: depth in equivalent 2-input gate levels (drives timing);
   - [gates]: number of equivalent 2-input gates (drives area and power).

   A technology library (see {!Ggpu_tech}) converts levels to nanoseconds
   and gates to square micrometres. *)

type t =
  | Buf (* repeater / fanout buffer *)
  | Not
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Div
  | Shl
  | Shr
  | Eq
  | Lt
  | Mux of int (* n-way word-level multiplexer *)
  | Decode (* binary address decoder *)
  | Encode (* priority encoder *)

let to_string = function
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Shl -> "shl"
  | Shr -> "shr"
  | Eq -> "eq"
  | Lt -> "lt"
  | Mux n -> Printf.sprintf "mux%d" n
  | Decode -> "decode"
  | Encode -> "encode"

let pp fmt op = Format.pp_print_string fmt (to_string op)

(* ceil (log2 n), with log2 1 = 0. *)
let clog2 n =
  if n <= 1 then 0
  else
    let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
    go 0 1

(* Depth in 2-input gate levels of the canonical implementation.  Adders
   and comparators use a prefix (Kogge-Stone-like) structure, multipliers
   a Wallace tree feeding a final prefix adder, shifters a logarithmic
   barrel.  [Div] models a combinational restoring array divider; real
   designs pipeline it, which is exactly what the planner does when such a
   path fails timing. *)
let levels op ~width =
  let w = max 1 width in
  match op with
  | Buf -> 1
  | Not -> 1
  | And | Or | Xor -> 1
  | Add | Sub -> (2 * clog2 w) + 2
  | Mul -> (2 * clog2 w) + clog2 w + 4
  | Div -> 4 * w / 3 (* array divider: one subtract-and-shift row per bit *)
  | Shl | Shr -> clog2 w + 1
  | Eq -> clog2 w + 1
  | Lt -> (2 * clog2 w) + 2
  | Mux n -> clog2 (max 2 n) + 1
  | Decode -> clog2 w + 1
  | Encode -> (2 * clog2 w) + 1

(* Equivalent 2-input gate count of the canonical implementation. *)
let gates op ~width =
  let w = max 1 width in
  match op with
  | Buf -> (w + 3) / 4
  | Not -> (w + 1) / 2
  | And | Or | Xor -> w
  | Add | Sub -> 5 * w
  | Mul -> (11 * w * w / 10) + (6 * w)
  | Div -> (3 * w * w / 2) + (8 * w)
  | Shl | Shr -> w * clog2 w
  | Eq -> w + clog2 w
  | Lt -> (3 * w) + clog2 w
  | Mux n ->
      let n = max 2 n in
      w * (n - 1)
  | Decode -> (1 lsl min 12 w) / 2
  | Encode -> 3 * w

(* Operators whose output toggles on most cycles (datapath) versus rarely
   (control); used by the power model as a default activity factor. *)
let default_activity = function
  | Buf | Not | And | Or | Xor -> 0.15
  | Add | Sub | Mul | Div -> 0.25
  | Shl | Shr -> 0.20
  | Eq | Lt -> 0.10
  | Mux _ -> 0.15
  | Decode | Encode -> 0.08
