(* Topological ordering of the combinational subgraph.

   Sequential cells (flip-flops and macros) cut the graph: their outputs
   are timing sources and their inputs are timing sinks.  The order lists
   only combinational cells such that every comb cell appears after all
   comb cells driving its inputs.  Combinational loops are reported as an
   error (a generated netlist must never contain one). *)

exception Combinational_loop of string list

(* Comb cells feeding [cell]'s inputs. *)
let comb_predecessors netlist cell =
  List.filter_map
    (fun net ->
      match Netlist.driver_of netlist net with
      | Some driver when Cell.is_comb driver -> Some driver
      | Some _ | None -> None)
    (Cell.inputs cell)

let order netlist =
  let indegree = Hashtbl.create 256 in
  let comb_cells = ref [] in
  Netlist.iter_cells netlist (fun cell ->
      if Cell.is_comb cell then begin
        comb_cells := cell :: !comb_cells;
        Hashtbl.replace indegree (Cell.id cell) 0
      end);
  let bump cell =
    let id = Cell.id cell in
    Hashtbl.replace indegree id (Hashtbl.find indegree id + 1)
  in
  List.iter
    (fun cell -> List.iter (fun _pred -> bump cell) (comb_predecessors netlist cell))
    !comb_cells;
  let ready = Queue.create () in
  Hashtbl.iter (fun id deg -> if deg = 0 then Queue.add id ready) indegree;
  let out = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty ready) do
    let id = Queue.pop ready in
    let cell = Netlist.find_cell netlist id in
    out := cell :: !out;
    incr emitted;
    List.iter
      (fun net ->
        List.iter
          (fun reader ->
            if Cell.is_comb reader then begin
              let rid = Cell.id reader in
              let deg = Hashtbl.find indegree rid - 1 in
              Hashtbl.replace indegree rid deg;
              if deg = 0 then Queue.add rid ready
            end)
          (Netlist.readers_of netlist net))
      (Cell.outputs cell)
  done;
  if !emitted <> List.length !comb_cells then begin
    let stuck =
      Hashtbl.fold
        (fun id deg acc ->
          if deg > 0 then Cell.name (Netlist.find_cell netlist id) :: acc
          else acc)
        indegree []
    in
    raise (Combinational_loop stuck)
  end;
  List.rev !out

(* Fold over comb cells in topological order. *)
let fold netlist ~init ~f = List.fold_left f init (order netlist)
