(** Topological ordering of the combinational subgraph.

    Flip-flops and SRAM macros cut the graph; the order covers only
    combinational cells, each after all combinational cells driving it. *)

exception Combinational_loop of string list
(** Raised with the names of cells stuck in a cycle. *)

val order : Netlist.t -> Cell.t list
(** @raise Combinational_loop if the netlist has a combinational cycle. *)

val fold : Netlist.t -> init:'a -> f:('a -> Cell.t -> 'a) -> 'a

val comb_predecessors : Netlist.t -> Cell.t -> Cell.t list
(** Combinational cells driving the given cell's inputs. *)
