(* Cells: instances of combinational operators, flip-flop banks, or SRAM
   macros, connected to nets.

   A cell carries a [count] multiplicity: G-GPU datapaths are extremely
   regular (8 identical processing elements per compute unit, replicated
   lanes, etc.), so the generator emits one representative cell with
   [count = n] instead of n identical cells.  Statistics (gates, flip-flop
   bits, area, power) multiply by [count]; timing uses the representative
   alone, which is exact for replicated structure. *)

type kind =
  | Comb of Op.t
  | Dff (* bank of flip-flops, one per bit of the output net *)
  | Macro of Macro_spec.t

type t = {
  id : int;
  name : string;
  region : string; (* hierarchical placement region, e.g. "cu0/pe3" *)
  kind : kind;
  inputs : Net.t list;
  outputs : Net.t list;
  count : int;
}

let id t = t.id
let name t = t.name
let region t = t.region
let kind t = t.kind
let inputs t = t.inputs
let outputs t = t.outputs
let count t = t.count

let make ~id ~name ~region ~kind ~inputs ~outputs ~count =
  if count < 1 then invalid_arg "Cell.make: count < 1";
  (match kind with
  | Comb _ | Dff ->
      if outputs = [] then invalid_arg "Cell.make: cell without outputs"
  | Macro _ -> ());
  { id; name; region; kind; inputs; outputs; count }

let is_sequential t = match t.kind with Dff | Macro _ -> true | Comb _ -> false
let is_comb t = not (is_sequential t)
let is_macro t = match t.kind with Macro _ -> true | Comb _ | Dff -> false

let output_width t =
  List.fold_left (fun acc net -> acc + Net.width net) 0 t.outputs

(* Flip-flop bits contributed by this cell (0 unless a Dff). *)
let ff_bits t =
  match t.kind with Dff -> output_width t * t.count | Comb _ | Macro _ -> 0

(* Equivalent 2-input gates contributed by this cell (0 unless comb). *)
let comb_gates t =
  match t.kind with
  | Comb op -> Op.gates op ~width:(output_width t) * t.count
  | Dff | Macro _ -> 0

let macro_spec t =
  match t.kind with Macro spec -> Some spec | Comb _ | Dff -> None

let kind_to_string = function
  | Comb op -> Op.to_string op
  | Dff -> "dff"
  | Macro spec -> Macro_spec.to_string spec

let pp fmt t =
  Format.fprintf fmt "%s:%s[x%d]@%s" t.name (kind_to_string t.kind) t.count
    t.region
