(* Specification of an SRAM macro instance: geometry and port count.

   The ranges mirror the 65 nm memory compiler described in the paper:
   16-65536 words and 2-144 bits per word, single- or dual-port. *)

type ports = Single_port | Dual_port

type t = { words : int; bits : int; ports : ports }

let min_words = 16
let max_words = 65536
let min_bits = 2
let max_bits = 144

exception Out_of_range of string

let check_range t =
  if t.words < min_words || t.words > max_words then
    raise
      (Out_of_range
         (Printf.sprintf "macro words %d outside [%d, %d]" t.words min_words
            max_words));
  if t.bits < min_bits || t.bits > max_bits then
    raise
      (Out_of_range
         (Printf.sprintf "macro bits %d outside [%d, %d]" t.bits min_bits
            max_bits))

let make ~words ~bits ~ports =
  let t = { words; bits; ports } in
  check_range t;
  t

let words t = t.words
let bits t = t.bits
let ports t = t.ports
let total_bits t = t.words * t.bits
let is_dual_port t = t.ports = Dual_port
let address_bits t = Op.clog2 t.words

let ports_to_string = function
  | Single_port -> "1p"
  | Dual_port -> "2p"

let to_string t =
  Printf.sprintf "sram_%dx%d_%s" t.words t.bits (ports_to_string t.ports)

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a.words = b.words && a.bits = b.bits && a.ports = b.ports

(* Splitting a macro by words halves (etc.) the address space per bank;
   the bank count must divide the word count and leave a legal macro. *)
let split_words t ~banks =
  if banks < 2 then invalid_arg "Macro_spec.split_words: banks < 2";
  if t.words mod banks <> 0 then
    invalid_arg
      (Printf.sprintf "Macro_spec.split_words: %d words not divisible by %d"
         t.words banks);
  make ~words:(t.words / banks) ~bits:t.bits ~ports:t.ports

(* Splitting by bits slices the word into independent narrower macros. *)
let split_bits t ~slices =
  if slices < 2 then invalid_arg "Macro_spec.split_bits: slices < 2";
  if t.bits mod slices <> 0 then
    invalid_arg
      (Printf.sprintf "Macro_spec.split_bits: %d bits not divisible by %d"
         t.bits slices);
  make ~words:t.words ~bits:(t.bits / slices) ~ports:t.ports
