(** Structural Verilog export: the netlist as a single flat module,
    with combinational cells as continuous assignments, flip-flops as
    clocked always blocks, and SRAM macros instantiated by their memory
    compiler cell names (sram_<words>x<bits>_2p) — how hand-instantiated
    macros appear in an ASIC netlist. *)

val sanitize : string -> string
(** Make a hierarchical name a legal Verilog identifier. *)

val to_string : Netlist.t -> string

val write : Netlist.t -> path:string -> unit
(** Write {!to_string} to a file. *)
