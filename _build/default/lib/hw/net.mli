(** Nets: named wire bundles with a bit width.

    Nets are value records identified by an integer id unique within their
    owning {!Netlist.t}; the netlist is the only intended constructor. *)

type t

val make : id:int -> name:string -> width:int -> t
(** Used by {!Netlist}; not intended for direct use. *)

val id : t -> int
val name : t -> string
val width : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
