(** Combinational operator catalogue.

    Technology-independent structural characterisation of the
    combinational primitives a netlist may instantiate.  Depth (gate
    levels) and size (equivalent 2-input gates) are derived from canonical
    implementations; a technology library converts them to nanoseconds and
    square micrometres. *)

type t =
  | Buf  (** repeater / fanout buffer *)
  | Not
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Div
  | Shl
  | Shr
  | Eq
  | Lt
  | Mux of int  (** [Mux n] is an n-way word-level multiplexer *)
  | Decode  (** binary address decoder *)
  | Encode  (** priority encoder *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val clog2 : int -> int
(** [clog2 n] is the ceiling of log2 [n]; [clog2 1 = 0]. *)

val levels : t -> width:int -> int
(** Depth of the operator in equivalent 2-input gate levels at the given
    bit width.  Always at least 1 for non-trivial operators. *)

val gates : t -> width:int -> int
(** Equivalent 2-input gate count at the given bit width. *)

val default_activity : t -> float
(** Default switching-activity factor used by the power model. *)
