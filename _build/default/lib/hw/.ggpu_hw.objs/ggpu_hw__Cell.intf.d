lib/hw/cell.mli: Format Macro_spec Net Op
