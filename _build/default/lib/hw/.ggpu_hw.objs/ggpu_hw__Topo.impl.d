lib/hw/topo.ml: Cell Hashtbl List Netlist Queue
