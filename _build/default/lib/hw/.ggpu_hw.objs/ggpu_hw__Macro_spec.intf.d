lib/hw/macro_spec.mli: Format
