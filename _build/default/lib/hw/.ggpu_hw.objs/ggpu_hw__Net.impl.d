lib/hw/net.ml: Format Int
