lib/hw/netlist.ml: Cell Format Hashtbl List Macro_spec Net Op Option Printf String
