lib/hw/netlist.mli: Cell Format Net
