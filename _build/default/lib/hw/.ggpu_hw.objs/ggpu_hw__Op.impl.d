lib/hw/op.ml: Format Printf
