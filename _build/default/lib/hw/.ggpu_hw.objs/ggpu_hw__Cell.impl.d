lib/hw/cell.ml: Format List Macro_spec Net Op
