lib/hw/verilog.mli: Netlist
