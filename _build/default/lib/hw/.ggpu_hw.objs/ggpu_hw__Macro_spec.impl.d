lib/hw/macro_spec.ml: Format Op Printf
