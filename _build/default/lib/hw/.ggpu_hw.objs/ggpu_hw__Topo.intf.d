lib/hw/topo.mli: Cell Netlist
