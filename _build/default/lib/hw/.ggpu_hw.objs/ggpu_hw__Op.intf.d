lib/hw/op.mli: Format
