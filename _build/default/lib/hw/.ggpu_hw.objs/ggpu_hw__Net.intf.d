lib/hw/net.mli: Format
