lib/hw/verilog.ml: Buffer Cell Fun Hashtbl Int List Macro_spec Net Netlist Op Printf String
