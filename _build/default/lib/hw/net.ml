(* A net: a named bundle of wires of a given bit width.  Nets are created
   by a {!Netlist.t} which guarantees unique ids. *)

type t = { id : int; name : string; width : int }

let id t = t.id
let name t = t.name
let width t = t.width
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id
let make ~id ~name ~width = { id; name; width }
let pp fmt t = Format.fprintf fmt "%s<%d>#%d" t.name t.width t.id
