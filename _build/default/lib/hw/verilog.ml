(* Structural Verilog export.

   Emits the netlist as a single flat Verilog module so generated
   designs can be inspected (and linted) by standard EDA tooling - the
   closest this repository can get to the paper's "tapeout-ready IP"
   hand-off.  Combinational cells print as continuous assignments over
   behavioural operators, flip-flops as always @(posedge clk) blocks,
   and SRAM macros as instantiations of the memory compiler's cell names
   (sram_<words>x<bits>_2p), matching how hand-instantiated macros
   appear in an ASIC netlist.

   Replicated cells (count > 1) emit a generate-for over their count;
   the replica index is appended to instance names. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let net_ref net = sanitize (Printf.sprintf "%s_%d" (Net.name net) (Net.id net))

let range width = if width = 1 then "" else Printf.sprintf "[%d:0] " (width - 1)

let comb_expr op inputs =
  let fold sep = String.concat sep (List.map net_ref inputs) in
  match (op, inputs) with
  | Op.Buf, _ -> "{" ^ fold ", " ^ "}"
  | Op.Not, [ a ] -> "~" ^ net_ref a
  | Op.And, _ -> fold " & "
  | Op.Or, _ -> fold " | "
  | Op.Xor, _ -> fold " ^ "
  | Op.Add, _ -> fold " + "
  | Op.Sub, [ a; b ] -> Printf.sprintf "%s - %s" (net_ref a) (net_ref b)
  | Op.Mul, _ -> fold " * "
  | Op.Div, [ a; b ] -> Printf.sprintf "%s / %s" (net_ref a) (net_ref b)
  | Op.Shl, [ a; b ] -> Printf.sprintf "%s << %s" (net_ref a) (net_ref b)
  | Op.Shl, [ a ] -> net_ref a ^ " << 1"
  | Op.Shr, [ a; b ] -> Printf.sprintf "%s >> %s" (net_ref a) (net_ref b)
  | Op.Shr, [ a ] -> net_ref a ^ " >> 1"
  | Op.Eq, [ a; b ] -> Printf.sprintf "%s == %s" (net_ref a) (net_ref b)
  | Op.Lt, [ a; b ] ->
      Printf.sprintf "$signed(%s) < $signed(%s)" (net_ref a) (net_ref b)
  | Op.Mux n, sel :: data when List.length data = n ->
      (* nested ternary over the selector *)
      let rec chain i = function
        | [ last ] -> net_ref last
        | d :: rest ->
            Printf.sprintf "(%s == %d) ? %s : (%s)" (net_ref sel) i (net_ref d)
              (chain (i + 1) rest)
        | [] -> "'0"
      in
      chain 0 data
  | Op.Decode, [ a ] -> Printf.sprintf "1'b1 << %s" (net_ref a)
  | Op.Encode, [ a ] -> Printf.sprintf "$clog2(%s)" (net_ref a)
  | _, _ ->
      (* fallback for arity mismatches: reduce everything *)
      (match inputs with [] -> "'0" | [ a ] -> net_ref a | _ -> fold " ^ ")
  |> fun body -> "(" ^ body ^ ")"

let cell_instance buffer cell =
  let name = sanitize (Cell.name cell) in
  let emit fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let replicate body =
    if Cell.count cell = 1 then body ()
    else begin
      emit "  genvar %s_g;\n  generate\n    for (%s_g = 0; %s_g < %d; %s_g = %s_g + 1) begin : %s_rep\n"
        name name name (Cell.count cell) name name name;
      body ();
      emit "    end\n  endgenerate\n"
    end
  in
  match Cell.kind cell with
  | Cell.Comb op -> (
      match Cell.outputs cell with
      | [ out ] ->
          emit "  assign %s = %s; // %s\n" (net_ref out)
            (comb_expr op (Cell.inputs cell))
            name
      | outs ->
          List.iter
            (fun out ->
              emit "  assign %s = %s; // %s\n" (net_ref out)
                (comb_expr op (Cell.inputs cell))
                name)
            outs)
  | Cell.Dff ->
      let d = match Cell.inputs cell with d :: _ -> Some d | [] -> None in
      List.iter
        (fun q ->
          match d with
          | Some d when not (Net.equal d q) ->
              emit "  always @(posedge clk) %s <= %s; // %s\n" (net_ref q)
                (net_ref d) name
          | Some _ | None ->
              emit "  // %s: self-held state register %s\n" name (net_ref q))
        (Cell.outputs cell)
  | Cell.Macro spec ->
      replicate (fun () ->
          emit "      %s u_%s (.clk(clk)" (Macro_spec.to_string spec) name;
          List.iteri
            (fun i net -> emit ", .i%d(%s)" i (net_ref net))
            (Cell.inputs cell);
          List.iteri
            (fun i net -> emit ", .o%d(%s)" i (net_ref net))
            (Cell.outputs cell);
          emit ");\n")

(* Wire declarations: every net once; registers must be 'reg'. *)
let declarations buffer netlist =
  let reg_nets = Hashtbl.create 64 in
  Netlist.iter_cells netlist (fun cell ->
      match Cell.kind cell with
      | Cell.Dff ->
          List.iter
            (fun q -> Hashtbl.replace reg_nets (Net.id q) ())
            (Cell.outputs cell)
      | Cell.Comb _ | Cell.Macro _ -> ());
  let port_nets = Hashtbl.create 16 in
  List.iter
    (fun net -> Hashtbl.replace port_nets (Net.id net) ())
    (Netlist.inputs netlist @ Netlist.outputs netlist);
  Netlist.iter_nets netlist (fun net ->
      if not (Hashtbl.mem port_nets (Net.id net)) then begin
        let keyword =
          if Hashtbl.mem reg_nets (Net.id net) then "reg" else "wire"
        in
        Buffer.add_string buffer
          (Printf.sprintf "  %s %s%s;\n" keyword
             (range (Net.width net))
             (net_ref net))
      end)

let to_string netlist =
  let buffer = Buffer.create 65536 in
  let emit fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let module_name = sanitize (Netlist.name netlist) in
  let ports =
    ("input wire clk"
    :: List.map
         (fun net ->
           Printf.sprintf "input wire %s%s" (range (Net.width net))
             (net_ref net))
         (Netlist.inputs netlist))
    @ List.map
        (fun net ->
          Printf.sprintf "output wire %s%s" (range (Net.width net))
            (net_ref net))
        (Netlist.outputs netlist)
  in
  emit "// Generated by GPUPlanner (G-GPU reproduction); structural netlist.\n";
  emit "module %s (\n  %s\n);\n\n" module_name (String.concat ",\n  " ports);
  declarations buffer netlist;
  emit "\n";
  let cells =
    List.sort
      (fun a b -> Int.compare (Cell.id a) (Cell.id b))
      (Netlist.cells netlist)
  in
  List.iter (fun cell -> cell_instance buffer cell) cells;
  emit "\nendmodule\n";
  Buffer.contents buffer

let write netlist ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string netlist))
