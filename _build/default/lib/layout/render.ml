(* ASCII rendering of a floorplan (the repo's stand-in for the paper's
   layout screenshots, Figs. 3 and 4).  Partitions draw as labelled
   boxes scaled to the die; the macro annotation distinguishes original
   macros from the banks/slices the planner created, which the paper
   highlights in colour. *)

let columns = 72

let render (fp : Floorplan.t) =
  let die_w = fp.Floorplan.die.Floorplan.w in
  let die_h = fp.Floorplan.die.Floorplan.h in
  let rows = max 12 (int_of_float (float_of_int columns *. die_h /. die_w /. 2.2)) in
  let canvas = Array.make_matrix rows columns ' ' in
  let scale_x v = int_of_float (v /. die_w *. float_of_int (columns - 1)) in
  let scale_y v = int_of_float (v /. die_h *. float_of_int (rows - 1)) in
  let draw_box (p : Floorplan.partition) =
    let r = p.Floorplan.rect in
    let x0 = scale_x r.Floorplan.x
    and x1 = scale_x (r.Floorplan.x +. r.Floorplan.w) in
    let y0 = scale_y r.Floorplan.y
    and y1 = scale_y (r.Floorplan.y +. r.Floorplan.h) in
    let x1 = min (columns - 1) (max x1 (x0 + 1)) in
    let y1 = min (rows - 1) (max y1 (y0 + 1)) in
    for x = x0 to x1 do
      canvas.(y0).(x) <- '-';
      canvas.(y1).(x) <- '-'
    done;
    for y = y0 to y1 do
      canvas.(y).(x0) <- '|';
      canvas.(y).(x1) <- '|'
    done;
    canvas.(y0).(x0) <- '+';
    canvas.(y0).(x1) <- '+';
    canvas.(y1).(x0) <- '+';
    canvas.(y1).(x1) <- '+';
    let label =
      Printf.sprintf "%s m=%d(+%d)" p.Floorplan.part_name
        (p.Floorplan.macro_count - p.Floorplan.divided_macros)
        p.Floorplan.divided_macros
    in
    let ly = (y0 + y1) / 2 in
    let lx = x0 + 1 in
    String.iteri
      (fun i c -> if lx + i < x1 then canvas.(ly).(lx + i) <- c)
      label
  in
  (* draw top first so CU/GMC boxes overwrite its outline *)
  let top, others =
    List.partition
      (fun p -> String.equal p.Floorplan.part_name "top")
      fp.Floorplan.partitions
  in
  List.iter draw_box top;
  List.iter draw_box others;
  let buffer = Buffer.create (rows * (columns + 1)) in
  Buffer.add_string buffer
    (Printf.sprintf "%s  die %.2f x %.2f mm (%.2f mm2)\n" fp.Floorplan.design
       die_w die_h
       (Floorplan.die_area_mm2 fp));
  Array.iter
    (fun row ->
      Buffer.add_string buffer (String.init columns (Array.get row));
      Buffer.add_char buffer '\n')
    canvas;
  Buffer.add_string buffer
    "legend: m=<original macros>(+<banks/slices from memory division>)\n";
  Buffer.add_string buffer "partitions:\n";
  List.iter
    (fun (p : Floorplan.partition) ->
      let r = p.Floorplan.rect in
      Buffer.add_string buffer
        (Printf.sprintf
           "  %-6s %.2f x %.2f mm at (%.2f, %.2f)  macros %d (+%d divided)\n"
           p.Floorplan.part_name r.Floorplan.w r.Floorplan.h r.Floorplan.x
           r.Floorplan.y
           (p.Floorplan.macro_count - p.Floorplan.divided_macros)
           p.Floorplan.divided_macros))
    fp.Floorplan.partitions;
  Buffer.contents buffer
