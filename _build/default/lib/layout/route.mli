(** Global-routing wirelength estimation per metal layer (Table II).

    Statistical, net-by-net: intra-partition nets get a Rent-style
    average length scaled by a congestion factor (timing pressure ×
    macro fragmentation); cross-partition nets use partition distances.
    Demand spreads over signal layers M2-M7, short wire low, long wire
    high. *)

type t = {
  per_layer_um : (string * float) list;  (** signal layers, bottom-up *)
  total_um : float;
  intra_um : float;
  inter_um : float;
  congestion : float;
}

val congestion_factor :
  period_ns:float -> macros:int -> base_macros:int -> float

val estimate :
  Ggpu_tech.Tech.t ->
  Ggpu_hw.Netlist.t ->
  Floorplan.t ->
  period_ns:float ->
  base_macros:int ->
  t
(** [period_ns] should be the period the layout actually achieves. *)

val layer_um : t -> string -> float
val pp : Format.formatter -> t -> unit
