lib/layout/route.ml: Cell Float Floorplan Format Ggpu_hw Ggpu_tech List Metal Net Netlist Option String Tech
