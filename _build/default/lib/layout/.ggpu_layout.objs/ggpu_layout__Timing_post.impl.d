lib/layout/timing_post.ml: Cell Float Floorplan Format Ggpu_hw Ggpu_synth Ggpu_tech Hashtbl List Memlib Metal Net Netlist Option Stdcell String Tech Timing
