lib/layout/render.ml: Array Buffer Floorplan List Printf String
