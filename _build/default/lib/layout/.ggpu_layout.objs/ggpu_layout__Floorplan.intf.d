lib/layout/floorplan.mli: Ggpu_hw Ggpu_synth Ggpu_tech
