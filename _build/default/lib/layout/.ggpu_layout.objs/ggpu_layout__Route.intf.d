lib/layout/route.mli: Floorplan Format Ggpu_hw Ggpu_tech
