lib/layout/timing_post.mli: Floorplan Format Ggpu_hw Ggpu_tech
