lib/layout/floorplan.ml: Area Float Ggpu_hw Ggpu_synth List Printf String
