(** Partitioned floorplans: compute-unit partitions flanking a central
    general-memory-controller column, top-level glue at low density —
    the paper's Figs. 3/4 organisation. *)

type rect = { x : float; y : float; w : float; h : float }  (** mm *)

type partition = {
  part_name : string;  (** "cu0".."cu7", "gmc" (or "gmc#k"), "top" *)
  rect : rect;
  area : Ggpu_synth.Area.t;
  macro_count : int;
  divided_macros : int;  (** banks/slices created by the planner *)
}

type t = {
  design : string;
  die : rect;
  partitions : partition list;
  num_cus : int;
}

val cu_density : float
(** 0.70, the paper's CU/GMC placement density. *)

val top_density : float
(** 0.30, the paper's sparse top partition. *)

val centre : rect -> float * float
val partition_centre : t -> string -> (float * float) option

val region_centres : t -> string -> (float * float) list
(** All placed copies of a region (the GMC may be replicated under the
    future-work floorplan). *)

val distance : t -> from_:string -> to_:string -> float
(** Manhattan distance in mm; a net to a replicated region reaches its
    nearest copy. *)

val build :
  ?gmc_copies:int -> Ggpu_tech.Tech.t -> Ggpu_hw.Netlist.t -> num_cus:int -> t
(** [gmc_copies > 1] implements the paper's future-work proposal of
    replicating the general memory controller.
    @raise Invalid_argument if [gmc_copies] is outside 1..4. *)

val die_area_mm2 : t -> float
val worst_cu_gmc_distance_mm : t -> float
