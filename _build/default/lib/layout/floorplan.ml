(* Partitioned floorplan.

   The paper breaks the design into three partition types: compute-unit
   partitions (one per CU, placed and routed once, then cloned), the
   general memory controller (GMC), and the top.  CU and GMC are packed
   at 70% placement density; the top level, holding the glue between
   partitions, is deliberately sparse at 30%.

   Geometry: the GMC sits in a central column with the top logic above
   and below it; CU partitions stack in two columns, left and right of
   the centre.  This mirrors the published layouts (Figs. 3 and 4) and
   produces the long GMC-to-peripheral-CU routes that derate the 8-CU
   design. *)

open Ggpu_synth

type rect = { x : float; y : float; w : float; h : float } (* mm *)

type partition = {
  part_name : string; (* "cu0".."cu7", "gmc", "top" *)
  rect : rect;
  area : Area.t;
  macro_count : int;
  divided_macros : int; (* banks/slices created by the planner *)
}

type t = {
  design : string;
  die : rect;
  partitions : partition list;
  num_cus : int;
}

let centre r = (r.x +. (r.w /. 2.0), r.y +. (r.h /. 2.0))

let partition_centre t name =
  match List.find_opt (fun p -> String.equal p.part_name name) t.partitions with
  | Some p -> Some (centre p.rect)
  | None -> None

(* All placed copies of a region ("gmc" may be replicated as "gmc#1",
   "gmc#2", ... under the future-work floorplan). *)
let region_centres t region =
  List.filter_map
    (fun p ->
      let name = p.part_name in
      let is_copy =
        String.equal name region
        || String.length name > String.length region
           && String.sub name 0 (String.length region) = region
           && name.[String.length region] = '#'
      in
      if is_copy then Some (centre p.rect) else None)
    t.partitions

(* Manhattan distance between two regions, in mm; a net to a replicated
   region reaches its nearest copy. *)
let distance t ~from_ ~to_ =
  let froms = region_centres t from_ and tos = region_centres t to_ in
  match (froms, tos) with
  | [], _ | _, [] -> 0.0
  | _ ->
      List.fold_left
        (fun acc (x1, y1) ->
          List.fold_left
            (fun acc (x2, y2) ->
              Float.min acc (abs_float (x1 -. x2) +. abs_float (y1 -. y2)))
            acc tos)
        infinity froms

let cu_density = 0.70
let top_density = 0.30

let region_macro_stats netlist region =
  Ggpu_hw.Netlist.fold_cells netlist ~init:(0, 0) ~f:(fun (total, divided) cell ->
      if
        String.equal (Ggpu_hw.Cell.region cell) region
        && Ggpu_hw.Cell.is_macro cell
      then begin
        let n = Ggpu_hw.Cell.count cell in
        let name = Ggpu_hw.Cell.name cell in
        let is_divided =
          (* banks and slices carry the transform's naming *)
          let has sub =
            let rec find i =
              i + String.length sub <= String.length name
              && (String.equal (String.sub name i (String.length sub)) sub
                 || find (i + 1))
            in
            find 0
          in
          has "/bank" || has "/slice"
        in
        (total + n, if is_divided then divided + n else divided)
      end
      else (total, divided))

(* Footprint of a region in mm^2 given its placed area and density. *)
let footprint area ~density =
  (area.Area.logic_mm2 /. density) +. area.Area.memory_mm2

(* [gmc_copies = 2] implements the paper's future-work proposal:
   replicate the general memory controller so each half of the CU stack
   talks to a nearby copy, shortening the worst CU-GMC route. *)
let build ?(gmc_copies = 1) tech netlist ~num_cus =
  if gmc_copies < 1 || gmc_copies > 4 then
    invalid_arg "Floorplan.build: gmc_copies outside 1..4";
  let cu_regions = List.init num_cus (fun i -> Printf.sprintf "cu%d" i) in
  let area_of region = Area.of_region tech netlist ~region in
  let cu_areas = List.map area_of cu_regions in
  let gmc_area = area_of "gmc" in
  let top_area = area_of "top" in
  let cu_fp =
    match cu_areas with
    | a :: _ -> footprint a ~density:cu_density
    | [] -> invalid_arg "Floorplan.build: no CUs"
  in
  let gmc_fp = footprint gmc_area ~density:cu_density in
  let top_fp = footprint top_area ~density:top_density in
  (* two CU columns flanking the central GMC+top column *)
  let rows = max 1 ((num_cus + 1) / 2) in
  let cu_h = sqrt (cu_fp /. 1.6) in
  let cu_w = cu_fp /. cu_h in
  let column_h = float_of_int rows *. cu_h in
  let centre_w = (gmc_fp +. top_fp) /. column_h in
  let left_cus = (num_cus + 1) / 2 in
  let die_w =
    (if num_cus > 1 then 2.0 *. cu_w else cu_w) +. centre_w
  in
  let die_h = column_h in
  let cu_rect i =
    if i < left_cus then
      { x = 0.0; y = float_of_int i *. cu_h; w = cu_w; h = cu_h }
    else
      {
        x = cu_w +. centre_w;
        y = float_of_int (i - left_cus) *. cu_h;
        w = cu_w;
        h = cu_h;
      }
  in
  let gmc_h = gmc_fp /. centre_w /. float_of_int gmc_copies in
  let gmc_rects =
    (* one copy at the centre; several spread evenly along the column *)
    List.init gmc_copies (fun k ->
        let centre_y =
          die_h *. (float_of_int (2 * k) +. 1.0)
          /. float_of_int (2 * gmc_copies)
        in
        { x = cu_w; y = centre_y -. (gmc_h /. 2.0); w = centre_w; h = gmc_h })
  in
  let top_rect = { x = cu_w; y = 0.0; w = centre_w; h = die_h } in
  let part name rect area region =
    let macro_count, divided_macros = region_macro_stats netlist region in
    { part_name = name; rect; area; macro_count; divided_macros }
  in
  let gmc_parts =
    List.mapi
      (fun k rect ->
        let name = if k = 0 then "gmc" else Printf.sprintf "gmc#%d" k in
        part name rect gmc_area "gmc")
      gmc_rects
  in
  let partitions =
    List.mapi
      (fun i region -> part region (cu_rect i) (List.nth cu_areas i) region)
      cu_regions
    @ gmc_parts
    @ [ part "top" top_rect top_area "top" ]
  in
  {
    design = Ggpu_hw.Netlist.name netlist;
    die = { x = 0.0; y = 0.0; w = die_w; h = die_h };
    partitions;
    num_cus;
  }

let die_area_mm2 t = t.die.w *. t.die.h

(* Worst CU-to-GMC distance: the length of the paper's problematic
   routes in the 8-CU floorplan. *)
let worst_cu_gmc_distance_mm t =
  List.fold_left
    (fun acc i ->
      max acc (distance t ~from_:(Printf.sprintf "cu%d" i) ~to_:"gmc"))
    0.0
    (List.init t.num_cus (fun i -> i))
