(** ASCII rendering of floorplans: the repository's stand-in for the
    paper's layout screenshots (Figs. 3 and 4), with divided memories
    annotated per partition. *)

val columns : int
(** Canvas width in characters. *)

val render : Floorplan.t -> string
