lib/fgpu/stats.ml: Format
