lib/fgpu/event_heap.ml: Array
