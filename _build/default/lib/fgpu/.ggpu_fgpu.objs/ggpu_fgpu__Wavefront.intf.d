lib/fgpu/wavefront.mli: Ggpu_isa
