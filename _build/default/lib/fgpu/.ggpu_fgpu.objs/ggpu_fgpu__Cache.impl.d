lib/fgpu/cache.ml: Array Config Stats
