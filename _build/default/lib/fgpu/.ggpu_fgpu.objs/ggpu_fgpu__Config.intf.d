lib/fgpu/config.mli:
