lib/fgpu/wavefront.ml: Array Fgpu_isa Ggpu_isa Int32 List Printf
