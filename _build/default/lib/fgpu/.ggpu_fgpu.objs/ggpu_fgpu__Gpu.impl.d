lib/fgpu/gpu.ml: Array Cache Config Event_heap List Printf Stats Wavefront
