lib/fgpu/gpu.mli: Config Ggpu_isa Stats
