lib/fgpu/cache.mli: Config Stats
