lib/fgpu/stats.mli: Format
