lib/fgpu/event_heap.mli:
