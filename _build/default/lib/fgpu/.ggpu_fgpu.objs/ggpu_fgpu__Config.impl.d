lib/fgpu/config.ml: Printf
