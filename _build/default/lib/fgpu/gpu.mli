(** G-GPU top level: workgroup dispatch and discrete-event execution of
    a compiled kernel over a grid of work-items.

    Functional results land in [mem]; timing comes from the vector
    pipelines, the shared iterative dividers, and the central cache /
    AXI model, which is where the paper's multi-CU saturation arises. *)

exception Launch_error of string

val run :
  Config.t ->
  program:Ggpu_isa.Fgpu_isa.t array ->
  params:int32 list ->
  global_size:int ->
  local_size:int ->
  mem:int32 array ->
  Stats.t
(** Execute the kernel for [global_size] work-items in workgroups of
    [local_size]. [params] are preloaded into r1..rN of every work-item
    (the code generator's convention). [mem] is global memory, mutated
    in place.
    @raise Launch_error on bad geometry or an empty program.
    @raise Wavefront.Fault on out-of-range memory accesses. *)
