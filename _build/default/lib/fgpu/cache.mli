(** Timing model of the central data cache and its AXI data movers:
    direct-mapped, write-back, write-allocate, multi-port, as the paper
    describes FGPU's cache. Models timing and traffic only; data lives
    in the global memory array. Completion times are computed
    analytically so the GPU runs as a discrete-event simulation. *)

type t

val create : Config.t -> stats:Stats.t -> t
val line_of_addr : t -> addr:int -> int

val access : t -> now:int -> addr:int -> write:bool -> int
(** One coalesced line access starting no earlier than [now]; returns
    the completion cycle. Updates tags, port/AXI occupancy and [stats].
    [now] must be non-decreasing across calls (guaranteed by the
    event-ordered scheduler). *)
