lib/rtlgen/generate.mli: Arch_params Ggpu_hw
