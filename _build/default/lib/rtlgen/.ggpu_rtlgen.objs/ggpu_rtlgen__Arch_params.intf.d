lib/rtlgen/arch_params.mli:
