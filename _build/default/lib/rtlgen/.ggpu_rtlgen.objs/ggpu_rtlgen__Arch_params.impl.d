lib/rtlgen/arch_params.ml: List Printf
