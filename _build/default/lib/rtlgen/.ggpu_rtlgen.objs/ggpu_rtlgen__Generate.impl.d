lib/rtlgen/generate.ml: Arch_params Cell Ggpu_hw List Macro_spec Net Netlist Op Printf String
