(** G-GPU netlist elaboration: builds the base (non-optimised)
    structural netlist — per-CU memories and pipelines, the general
    memory controller with the central cache, top-level runtime memory
    and AXI control, and the cross-partition request/response nets that
    dominate post-layout timing at 8 CUs. The result validates and
    matches the published scale (see {!Arch_params}). *)

val generate : Arch_params.t -> Ggpu_hw.Netlist.t
(** @raise Failure if the generated netlist fails validation (a bug). *)

val generate_cus : num_cus:int -> Ggpu_hw.Netlist.t
(** [generate] with {!Arch_params.default}. *)

val region_cu : int -> string
(** The region name of CU [i] ("cu0", "cu1", ...). *)
