(* Standard-cell library model.

   All quantities are per "equivalent 2-input gate" (for combinational
   logic) or per flip-flop bit.  The default values are calibrated so that
   the generated non-optimised G-GPU closes timing at ~500 MHz in a 65 nm
   class technology and lands in the area/power range of Table I of the
   paper; they are deliberately exposed so users can model any node (see
   examples/custom_technology.ml). *)

type t = {
  name : string;
  gate_delay_ns : float; (* delay per gate level, incl. average local wire *)
  gate_area_um2 : float; (* placed area per equivalent gate *)
  gate_leak_nw : float; (* leakage per equivalent gate *)
  gate_energy_fj : float; (* switching energy per gate toggle *)
  dff_clk_to_q_ns : float;
  dff_setup_ns : float;
  dff_area_um2 : float; (* per flip-flop bit *)
  dff_leak_nw : float; (* per flip-flop bit *)
  dff_energy_fj : float; (* per bit per clock, incl. clock tree share *)
  clock_skew_ns : float; (* margin charged to every register-to-register path *)
}

let default_65nm =
  {
    name = "generic-65nm-lp";
    gate_delay_ns = 0.026;
    gate_area_um2 = 2.9;
    gate_leak_nw = 14.0;
    gate_energy_fj = 4.2;
    dff_clk_to_q_ns = 0.15;
    dff_setup_ns = 0.08;
    dff_area_um2 = 5.4;
    dff_leak_nw = 22.0;
    dff_energy_fj = 22.0;
    clock_skew_ns = 0.05;
  }

(* Delay through a combinational cell at a given width. *)
let comb_delay_ns t op ~width =
  float_of_int (Ggpu_hw.Op.levels op ~width) *. t.gate_delay_ns

let comb_area_um2 t op ~width =
  float_of_int (Ggpu_hw.Op.gates op ~width) *. t.gate_area_um2

let comb_leak_nw t op ~width =
  float_of_int (Ggpu_hw.Op.gates op ~width) *. t.gate_leak_nw

(* Average switching energy per cycle for a combinational cell. *)
let comb_energy_fj t op ~width =
  float_of_int (Ggpu_hw.Op.gates op ~width)
  *. t.gate_energy_fj
  *. Ggpu_hw.Op.default_activity op

let pp fmt t = Format.fprintf fmt "stdcell:%s" t.name
