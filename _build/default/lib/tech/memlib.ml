(* SRAM memory-compiler model.

   Given a macro geometry (words x bits, single/dual port) the model
   returns timing, area and power attributes, mimicking the datasheet
   views a commercial 65 nm memory compiler produces.

   Two properties matter for reproducing the paper's design-space
   exploration and are guaranteed by construction:

   - access delay grows superlinearly with the word count (long bitlines),
     so dividing a macro by words genuinely buys timing;
   - per-bit area has a fixed periphery overhead that grows as macros
     shrink, so two macros of M/2 x N are larger and leakier than one
     macro of M x N (the paper's area/power cost of division). *)

type attrs = {
  clk_to_q_ns : float; (* read clock-to-data-out *)
  setup_ns : float; (* address/data setup at the write port *)
  area_um2 : float;
  leak_nw : float;
  read_energy_pj : float; (* energy per read access *)
  write_energy_pj : float;
}

type t = {
  name : string;
  (* timing: clk_to_q = base + k_log2w * (log2 words)^2 + k_bits * bits *)
  delay_base_ns : float;
  delay_log2w_ns : float;
  delay_bits_ns : float;
  delay_dual_penalty_ns : float;
  setup_base_ns : float;
  (* area: bits * bit_area * port_factor + periphery *)
  bit_area_um2 : float;
  dual_port_area_factor : float;
  periphery_um2 : float; (* fixed per-macro overhead *)
  periphery_per_row_um2 : float; (* sense amps / column periphery *)
  (* power *)
  bit_leak_nw : float;
  periphery_leak_nw : float;
  read_energy_base_pj : float;
  read_energy_per_bit_pj : float;
  supports_single_port : bool;
}

let default_65nm =
  {
    name = "sram-65nm-lp";
    delay_base_ns = 0.16;
    delay_log2w_ns = 0.0088;
    delay_bits_ns = 0.0016;
    delay_dual_penalty_ns = 0.06;
    setup_base_ns = 0.10;
    bit_area_um2 = 0.62;
    dual_port_area_factor = 1.72;
    periphery_um2 = 4200.0;
    periphery_per_row_um2 = 11.0;
    bit_leak_nw = 0.0105;
    periphery_leak_nw = 2600.0;
    read_energy_base_pj = 4.5;
    read_energy_per_bit_pj = 0.24;
    supports_single_port = false;
  }

exception Unsupported of string

let float = float_of_int

let query t spec =
  let open Ggpu_hw in
  (match Macro_spec.ports spec with
  | Macro_spec.Single_port when not t.supports_single_port ->
      raise
        (Unsupported
           (Printf.sprintf
              "%s: single-port macros not yet supported (paper future work): %s"
              t.name
              (Macro_spec.to_string spec)))
  | Macro_spec.Single_port | Macro_spec.Dual_port -> ());
  let words = Macro_spec.words spec and bits = Macro_spec.bits spec in
  let log2w = float (Op.clog2 words) in
  let dual = Macro_spec.is_dual_port spec in
  let clk_to_q_ns =
    t.delay_base_ns
    +. (t.delay_log2w_ns *. log2w *. log2w)
    +. (t.delay_bits_ns *. float bits)
    +. (if dual then t.delay_dual_penalty_ns else 0.0)
  in
  let setup_ns = t.setup_base_ns in
  let port_factor = if dual then t.dual_port_area_factor else 1.0 in
  let core_area =
    float (Macro_spec.total_bits spec) *. t.bit_area_um2 *. port_factor
  in
  let periphery =
    t.periphery_um2 +. (t.periphery_per_row_um2 *. float words)
  in
  let area_um2 = core_area +. periphery in
  let leak_nw =
    (float (Macro_spec.total_bits spec) *. t.bit_leak_nw)
    +. (t.periphery_leak_nw *. (area_um2 /. (area_um2 +. 1.0)))
  in
  let read_energy_pj =
    t.read_energy_base_pj
    +. (t.read_energy_per_bit_pj *. float bits)
    +. (0.0016 *. float words) (* bitline precharge grows with depth *)
  in
  {
    clk_to_q_ns;
    setup_ns;
    area_um2;
    leak_nw;
    read_energy_pj;
    write_energy_pj = read_energy_pj *. 1.12;
  }

(* Enumerate legal bank counts for a word split (powers of two keeping the
   result in compiler range). *)
let legal_word_splits spec =
  let open Ggpu_hw in
  let words = Macro_spec.words spec in
  let rec go banks acc =
    if words / banks < Macro_spec.min_words || words mod banks <> 0 then
      List.rev acc
    else go (banks * 2) (banks :: acc)
  in
  go 2 []

let legal_bit_splits spec =
  let open Ggpu_hw in
  let bits = Macro_spec.bits spec in
  let rec go slices acc =
    if slices > bits || bits / slices < Macro_spec.min_bits then List.rev acc
    else if bits mod slices = 0 then go (slices * 2) (slices :: acc)
    else go (slices * 2) acc
  in
  go 2 []

let pp_attrs fmt a =
  Format.fprintf fmt
    "clk2q=%.3fns setup=%.3fns area=%.0fum2 leak=%.1fnW eread=%.2fpJ"
    a.clk_to_q_ns a.setup_ns a.area_um2 a.leak_nw a.read_energy_pj
