(** Global-wire delay model: buffered wires are linear in length;
    detour factors convert half-perimeter estimates to routed length. *)

type t = { buffered_delay_ns_per_mm : float; local_detour_factor : float }

val default_65nm : t
val delay_ns : t -> length_mm:float -> float
val routed_length_mm : t -> hpwl_mm:float -> float
