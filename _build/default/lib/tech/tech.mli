(** A complete technology: standard cells, memory compiler, wires and
    metal stack. The planner only consumes these models — as the paper
    puts it, its optimisation map "is agnostic of the technology used". *)

type t = {
  name : string;
  stdcell : Stdcell.t;
  memory : Memlib.t;
  wire : Wire.t;
  metal : Metal.t;
  supply_v : float;
}

val default_65nm : t
(** Calibrated so the non-optimised G-GPU closes at ~500 MHz and PPA
    lands on the paper's Table I. *)

val scaled_28nm : t
(** A coarse 28 nm-class scaling, for retargeting demonstrations. *)

val pp : Format.formatter -> t -> unit
