lib/tech/stdcell.ml: Format Ggpu_hw
