lib/tech/metal.mli:
