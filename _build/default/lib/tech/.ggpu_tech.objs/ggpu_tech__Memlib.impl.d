lib/tech/memlib.ml: Format Ggpu_hw List Macro_spec Op Printf
