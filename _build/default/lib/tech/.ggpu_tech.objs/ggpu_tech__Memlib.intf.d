lib/tech/memlib.mli: Format Ggpu_hw
