lib/tech/wire.mli:
