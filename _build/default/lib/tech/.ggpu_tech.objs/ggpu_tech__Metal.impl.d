lib/tech/metal.ml: List Printf
