lib/tech/wire.ml:
