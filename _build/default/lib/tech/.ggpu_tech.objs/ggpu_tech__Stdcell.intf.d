lib/tech/stdcell.mli: Format Ggpu_hw
