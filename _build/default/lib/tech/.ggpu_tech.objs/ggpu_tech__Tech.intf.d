lib/tech/tech.mli: Format Memlib Metal Stdcell Wire
