lib/tech/tech.ml: Format Memlib Metal Stdcell Wire
