(* Global-wire delay model.

   Long inter-partition wires are buffered; with optimal repeater
   insertion the delay is linear in length.  The constant is calibrated
   for a 65 nm class process (~0.12 ns/mm on intermediate layers).  This
   is the model behind the paper's key physical finding: the 8-CU
   floorplan puts peripheral compute units several millimetres from the
   general memory controller, and the resulting wire delay breaks the
   1.5 ns (667 MHz) target, derating the design to 600 MHz. *)

type t = {
  buffered_delay_ns_per_mm : float;
  local_detour_factor : float; (* routed length / half-perimeter estimate *)
}

let default_65nm = { buffered_delay_ns_per_mm = 0.125; local_detour_factor = 1.12 }

let delay_ns t ~length_mm = t.buffered_delay_ns_per_mm *. length_mm

(* Estimated routed length of a net given its half-perimeter wirelength. *)
let routed_length_mm t ~hpwl_mm = t.local_detour_factor *. hpwl_mm
