(** Standard-cell library model: per-equivalent-gate and per-flip-flop
    quantities, calibrated to a 65 nm-class node (see source for the
    calibration rationale). *)

type t = {
  name : string;
  gate_delay_ns : float;  (** per gate level, incl. average local wire *)
  gate_area_um2 : float;
  gate_leak_nw : float;
  gate_energy_fj : float;
  dff_clk_to_q_ns : float;
  dff_setup_ns : float;
  dff_area_um2 : float;  (** per flip-flop bit *)
  dff_leak_nw : float;
  dff_energy_fj : float;  (** per bit per clock, incl. clock tree share *)
  clock_skew_ns : float;
}

val default_65nm : t
val comb_delay_ns : t -> Ggpu_hw.Op.t -> width:int -> float
val comb_area_um2 : t -> Ggpu_hw.Op.t -> width:int -> float
val comb_leak_nw : t -> Ggpu_hw.Op.t -> width:int -> float
val comb_energy_fj : t -> Ggpu_hw.Op.t -> width:int -> float
val pp : Format.formatter -> t -> unit
