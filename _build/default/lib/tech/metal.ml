(* Metal stack model.

   Nine layers as in the paper's 65 nm technology; M1, M8 and M9 are
   reserved for power distribution, so global signal routing uses M2-M7.
   Each routable layer has a pitch (which fixes its track capacity per
   unit area) and a preference weight: routers fill cheap lower layers
   first and escalate to sparser upper layers for long nets, which is
   what produces the per-layer wirelength distribution of Table II. *)

type layer = {
  name : string;
  pitch_um : float;
  signal : bool; (* false for power-only layers *)
  preference : float; (* relative share of demand attracted, signal only *)
  r_ohm_per_mm : float;
  c_ff_per_mm : float;
}

type t = { layers : layer list }

let default_9layer =
  let mk name pitch_um signal preference r c =
    { name; pitch_um; signal; preference; r_ohm_per_mm = r; c_ff_per_mm = c }
  in
  {
    layers =
      [
        mk "M1" 0.20 false 0.0 900.0 220.0;
        mk "M2" 0.20 true 0.20 780.0 210.0;
        mk "M3" 0.20 true 0.28 780.0 210.0;
        mk "M4" 0.28 true 0.17 420.0 200.0;
        mk "M5" 0.28 true 0.16 420.0 200.0;
        mk "M6" 0.40 true 0.12 210.0 190.0;
        mk "M7" 0.40 true 0.07 210.0 190.0;
        mk "M8" 0.80 false 0.0 60.0 180.0;
        mk "M9" 0.80 false 0.0 60.0 180.0;
      ];
  }

let signal_layers t = List.filter (fun l -> l.signal) t.layers
let layer_names t = List.map (fun l -> l.name) t.layers

let find t name =
  match List.find_opt (fun l -> l.name = name) t.layers with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Metal.find: no layer %s" name)

(* Track capacity of a layer in millimetres of wire per square millimetre
   of die, assuming half the layer is usable for signal routing. *)
let capacity_mm_per_mm2 layer =
  if not layer.signal then 0.0 else 0.5 *. 1000.0 /. layer.pitch_um
