(** Metal stack model: nine layers as in the paper's 65 nm technology;
    M1/M8/M9 are power-only, signal routing uses M2-M7. *)

type layer = {
  name : string;
  pitch_um : float;
  signal : bool;
  preference : float;  (** relative share of routing demand attracted *)
  r_ohm_per_mm : float;
  c_ff_per_mm : float;
}

type t = { layers : layer list }

val default_9layer : t
val signal_layers : t -> layer list
val layer_names : t -> string list

val find : t -> string -> layer
(** @raise Invalid_argument on an unknown layer name. *)

val capacity_mm_per_mm2 : layer -> float
(** Track capacity (mm of wire per mm² of die); 0 for power layers. *)
