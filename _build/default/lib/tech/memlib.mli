(** SRAM memory-compiler model: timing, area and power attributes per
    macro geometry, as a commercial 65 nm compiler's datasheets provide.

    Two properties hold by construction, because the paper's DSE relies
    on them: access delay grows superlinearly with word count (so word
    division buys timing), and per-bit area carries periphery overhead
    that grows as macros shrink (so division costs area and leakage). *)

type attrs = {
  clk_to_q_ns : float;
  setup_ns : float;
  area_um2 : float;
  leak_nw : float;
  read_energy_pj : float;
  write_energy_pj : float;
}

type t = {
  name : string;
  delay_base_ns : float;
  delay_log2w_ns : float;  (** coefficient of (log2 words)^2 *)
  delay_bits_ns : float;
  delay_dual_penalty_ns : float;
  setup_base_ns : float;
  bit_area_um2 : float;
  dual_port_area_factor : float;
  periphery_um2 : float;
  periphery_per_row_um2 : float;
  bit_leak_nw : float;
  periphery_leak_nw : float;
  read_energy_base_pj : float;
  read_energy_per_bit_pj : float;
  supports_single_port : bool;
      (** false for the default compiler, as in the paper (future work) *)
}

val default_65nm : t

exception Unsupported of string

val query : t -> Ggpu_hw.Macro_spec.t -> attrs
(** @raise Unsupported for single-port macros when the compiler lacks
    them. *)

val legal_word_splits : Ggpu_hw.Macro_spec.t -> int list
(** Bank counts (powers of two) keeping banks within compiler limits. *)

val legal_bit_splits : Ggpu_hw.Macro_spec.t -> int list
val pp_attrs : Format.formatter -> attrs -> unit
