(* A complete technology: standard cells, memory compiler, wires, metal
   stack.  The planner is agnostic of the values here - as the paper puts
   it, the optimisation map "is agnostic of the technology used" and only
   consumes memory delays and cell characteristics. *)

type t = {
  name : string;
  stdcell : Stdcell.t;
  memory : Memlib.t;
  wire : Wire.t;
  metal : Metal.t;
  supply_v : float;
}

let default_65nm =
  {
    name = "generic-65nm";
    stdcell = Stdcell.default_65nm;
    memory = Memlib.default_65nm;
    wire = Wire.default_65nm;
    metal = Metal.default_9layer;
    supply_v = 1.2;
  }

(* A coarse 28 nm-class scaling of the default technology, used by tests
   and the custom-technology example to show the flow is retargetable. *)
let scaled_28nm =
  let s = Stdcell.default_65nm in
  let m = Memlib.default_65nm in
  {
    name = "generic-28nm";
    stdcell =
      {
        s with
        Stdcell.name = "stdcell-28nm";
        gate_delay_ns = s.Stdcell.gate_delay_ns *. 0.45;
        gate_area_um2 = s.Stdcell.gate_area_um2 *. 0.22;
        gate_leak_nw = s.Stdcell.gate_leak_nw *. 1.6;
        gate_energy_fj = s.Stdcell.gate_energy_fj *. 0.35;
        dff_clk_to_q_ns = s.Stdcell.dff_clk_to_q_ns *. 0.5;
        dff_setup_ns = s.Stdcell.dff_setup_ns *. 0.5;
        dff_area_um2 = s.Stdcell.dff_area_um2 *. 0.22;
        dff_energy_fj = s.Stdcell.dff_energy_fj *. 0.35;
        clock_skew_ns = s.Stdcell.clock_skew_ns *. 0.6;
      };
    memory =
      {
        m with
        Memlib.name = "sram-28nm";
        delay_base_ns = m.Memlib.delay_base_ns *. 0.5;
        delay_log2w_ns = m.Memlib.delay_log2w_ns *. 0.5;
        delay_bits_ns = m.Memlib.delay_bits_ns *. 0.5;
        delay_dual_penalty_ns = m.Memlib.delay_dual_penalty_ns *. 0.5;
        setup_base_ns = m.Memlib.setup_base_ns *. 0.5;
        bit_area_um2 = m.Memlib.bit_area_um2 *. 0.25;
        periphery_um2 = m.Memlib.periphery_um2 *. 0.35;
        periphery_per_row_um2 = m.Memlib.periphery_per_row_um2 *. 0.35;
        read_energy_base_pj = m.Memlib.read_energy_base_pj *. 0.4;
        read_energy_per_bit_pj = m.Memlib.read_energy_per_bit_pj *. 0.4;
      };
    wire =
      {
        Wire.buffered_delay_ns_per_mm =
          Wire.default_65nm.Wire.buffered_delay_ns_per_mm *. 1.4;
        local_detour_factor = Wire.default_65nm.Wire.local_detour_factor;
      };
    metal = Metal.default_9layer;
    supply_v = 0.9;
  }

let pp fmt t = Format.fprintf fmt "tech:%s" t.name
