lib/riscv/cpu.mli: Format Ggpu_isa Timing_model
