lib/riscv/timing_model.ml: Ggpu_isa
