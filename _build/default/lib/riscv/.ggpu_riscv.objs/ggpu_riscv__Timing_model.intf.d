lib/riscv/timing_model.mli: Ggpu_isa
