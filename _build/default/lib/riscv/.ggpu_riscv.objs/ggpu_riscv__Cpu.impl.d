lib/riscv/cpu.ml: Array Format Ggpu_isa Int32 Int64 Printf Rv32 Timing_model
