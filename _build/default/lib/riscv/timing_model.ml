(* Cycle-cost model of the baseline RISC-V CPU.

   Calibrated on the CV32E40P (the 4-stage in-order core the paper
   synthesises as its RISC-V comparison point): single-issue, most
   instructions complete in one cycle, taken branches flush the front
   end, division is iterative.  Loads/stores pay wait states to the external
   32 kB SRAM, as in the paper's synthesised CV32E40P system. *)

type t = {
  base : int; (* cycles for simple ALU / not-taken branch *)
  load : int;
  store : int;
  branch_taken : int;
  jump : int;
  mul : int;
  div : int; (* iterative divider latency *)
}

let cv32e40p =
  { base = 1; load = 8; store = 3; branch_taken = 3; jump = 2; mul = 1; div = 22 }

let cost t insn ~taken =
  match insn with
  | Ggpu_isa.Rv32.Lw _ -> t.load
  | Ggpu_isa.Rv32.Sw _ -> t.store
  | Ggpu_isa.Rv32.Beq _ | Ggpu_isa.Rv32.Bne _ | Ggpu_isa.Rv32.Blt _
  | Ggpu_isa.Rv32.Bge _ | Ggpu_isa.Rv32.Bltu _ | Ggpu_isa.Rv32.Bgeu _ ->
      if taken then t.branch_taken else t.base
  | Ggpu_isa.Rv32.Jal _ | Ggpu_isa.Rv32.Jalr _ -> t.jump
  | Ggpu_isa.Rv32.Mul _ | Ggpu_isa.Rv32.Mulh _ -> t.mul
  | Ggpu_isa.Rv32.Div _ | Ggpu_isa.Rv32.Divu _ | Ggpu_isa.Rv32.Rem _
  | Ggpu_isa.Rv32.Remu _ ->
      t.div
  | _ -> t.base
