(** Cycle-cost model of the baseline RISC-V CPU, calibrated on the
    CV32E40P with external-SRAM wait states (the paper's synthesised
    comparison point). *)

type t = {
  base : int;
  load : int;
  store : int;
  branch_taken : int;
  jump : int;
  mul : int;
  div : int;
}

val cv32e40p : t
val cost : t -> Ggpu_isa.Rv32.t -> taken:bool -> int
