(** Virtual-register IR: the flat, label-based middle end between the
    kernel AST and both instruction sets. One IR for both targets
    mirrors the paper's single OpenCL source feeding two toolchains. *)

type vreg = int
type value = Reg of vreg | Imm of int32
type special = Gid | Lid | WGid | LSize | GSize

type insn =
  | Bin of Ast.binop * vreg * value * value
  | Cmp of Ast.cmpop * vreg * value * value
  | Mov of vreg * value
  | Load of vreg * string * value  (** dst <- buffer.(idx) *)
  | Store of string * value * value
  | Read_special of special * vreg
  | Read_param of string * vreg
  | Label of string
  | Jump of string
  | Branch_if of Ast.cmpop * value * value * string
  | Barrier
  | Ret

type program = {
  kernel_name : string;
  buffers : string list;
  scalars : string list;
  insns : insn list;
}

val special_to_string : special -> string
val value_to_string : value -> string
val binop_to_string : Ast.binop -> string
val cmpop_to_string : Ast.cmpop -> string
val insn_to_string : insn -> string
val pp_program : Format.formatter -> program -> unit

val uses : insn -> vreg list
(** Registers read (with multiplicity). *)

val defs : insn -> vreg list
