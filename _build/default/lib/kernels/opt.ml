(* Optimisation passes over the virtual IR.

   A small, conservative subset of what the paper's LLVM pipeline would
   do before code generation:

   - constant folding (arithmetic and comparisons on immediates, with
     the same division corner-case semantics as the executors);
   - algebraic simplification (x+0, x-0, x*1, x*0, shifts by 0, x|0,
     x&0, x^0);
   - copy propagation for single-assignment registers;
   - branch folding (conditions on two immediates become jumps or
     disappear);
   - dead-code elimination of defs whose register is never read.

   Passes iterate to a fixpoint (bounded), preserving the program's
   observable behaviour: stores, barriers, control flow and `Ret` are
   never removed. *)

let fold_binop op a b =
  let shift f = f a (Int32.to_int b land 31) in
  match op with
  | Ast.Add -> Some (Int32.add a b)
  | Ast.Sub -> Some (Int32.sub a b)
  | Ast.Mul -> Some (Int32.mul a b)
  | Ast.Div ->
      Some
        (if b = 0l then -1l
         else if a = Int32.min_int && b = -1l then Int32.min_int
         else Int32.div a b)
  | Ast.Rem ->
      Some
        (if b = 0l then a
         else if a = Int32.min_int && b = -1l then 0l
         else Int32.rem a b)
  | Ast.And -> Some (Int32.logand a b)
  | Ast.Or -> Some (Int32.logor a b)
  | Ast.Xor -> Some (Int32.logxor a b)
  | Ast.Shl -> Some (shift Int32.shift_left)
  | Ast.Shr -> Some (shift Int32.shift_right_logical)
  | Ast.Sra -> Some (shift Int32.shift_right)

let fold_cmp op a b =
  let c = Int32.compare a b in
  let r =
    match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
  in
  if r then 1l else 0l

(* x op identity -> x; x op absorber -> constant *)
let simplify_binop op lhs rhs =
  match (op, lhs, rhs) with
  | Ast.Add, value, Vir.Imm 0l
  | Ast.Add, Vir.Imm 0l, value
  | Ast.Sub, value, Vir.Imm 0l
  | Ast.Or, value, Vir.Imm 0l
  | Ast.Or, Vir.Imm 0l, value
  | Ast.Xor, value, Vir.Imm 0l
  | Ast.Xor, Vir.Imm 0l, value
  | Ast.Shl, value, Vir.Imm 0l
  | Ast.Shr, value, Vir.Imm 0l
  | Ast.Sra, value, Vir.Imm 0l
  | Ast.Mul, value, Vir.Imm 1l
  | Ast.Mul, Vir.Imm 1l, value
  | Ast.Div, value, Vir.Imm 1l ->
      Some value
  | Ast.Mul, _, Vir.Imm 0l | Ast.Mul, Vir.Imm 0l, _ | Ast.And, _, Vir.Imm 0l
  | Ast.And, Vir.Imm 0l, _ ->
      Some (Vir.Imm 0l)
  | _ -> None

let constant_fold insns =
  List.filter_map
    (fun insn ->
      match insn with
      | Vir.Bin (op, d, Vir.Imm a, Vir.Imm b) -> (
          match fold_binop op a b with
          | Some v -> Some (Vir.Mov (d, Vir.Imm v))
          | None -> Some insn)
      | Vir.Bin (op, d, lhs, rhs) -> (
          match simplify_binop op lhs rhs with
          | Some value -> Some (Vir.Mov (d, value))
          | None -> Some insn)
      | Vir.Cmp (op, d, Vir.Imm a, Vir.Imm b) ->
          Some (Vir.Mov (d, Vir.Imm (fold_cmp op a b)))
      | Vir.Branch_if (op, Vir.Imm a, Vir.Imm b, label) ->
          if fold_cmp op a b = 1l then Some (Vir.Jump label) else None
      | _ -> Some insn)
    insns

(* Registers assigned exactly once in the whole program. *)
let single_assignment insns =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun insn ->
      List.iter
        (fun d ->
          Hashtbl.replace counts d
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
        (Vir.defs insn))
    insns;
  fun v -> Hashtbl.find_opt counts v = Some 1

(* Propagate `Mov (y, src)` into later uses of y, when both y and (if a
   register) src are single-assignment: their values cannot change
   between definition and use, even across loop back edges. *)
let copy_propagate insns =
  let single = single_assignment insns in
  let replacement = Hashtbl.create 16 in
  List.iter
    (fun insn ->
      match insn with
      | Vir.Mov (y, (Vir.Imm _ as src)) when single y ->
          Hashtbl.replace replacement y src
      | Vir.Mov (y, (Vir.Reg x as src)) when single y && single x ->
          Hashtbl.replace replacement y src
      | _ -> ())
    insns;
  (* resolve chains y -> x -> imm *)
  let rec resolve value =
    match value with
    | Vir.Reg v -> (
        match Hashtbl.find_opt replacement v with
        | Some next -> resolve next
        | None -> value)
    | Vir.Imm _ -> value
  in
  let subst value = resolve value in
  List.map
    (fun insn ->
      match insn with
      | Vir.Bin (op, d, a, b) -> Vir.Bin (op, d, subst a, subst b)
      | Vir.Cmp (op, d, a, b) -> Vir.Cmp (op, d, subst a, subst b)
      | Vir.Mov (d, v) -> Vir.Mov (d, subst v)
      | Vir.Load (d, buf, idx) -> Vir.Load (d, buf, subst idx)
      | Vir.Store (buf, idx, v) -> Vir.Store (buf, subst idx, subst v)
      | Vir.Branch_if (op, a, b, l) -> Vir.Branch_if (op, subst a, subst b, l)
      | Vir.Read_special _ | Vir.Read_param _ | Vir.Label _ | Vir.Jump _
      | Vir.Barrier | Vir.Ret ->
          insn)
    insns

(* Remove defs whose register is never read anywhere.  Loads are
   removable: the kernel language has no volatile reads. *)
let dead_code insns =
  let used = Hashtbl.create 64 in
  List.iter
    (fun insn -> List.iter (fun v -> Hashtbl.replace used v ()) (Vir.uses insn))
    insns;
  List.filter
    (fun insn ->
      match insn with
      | Vir.Bin (_, d, _, _)
      | Vir.Cmp (_, d, _, _)
      | Vir.Mov (d, _)
      | Vir.Load (d, _, _)
      | Vir.Read_special (_, d)
      | Vir.Read_param (_, d) ->
          Hashtbl.mem used d
      | Vir.Store _ | Vir.Label _ | Vir.Jump _ | Vir.Branch_if _ | Vir.Barrier
      | Vir.Ret ->
          true)
    insns

(* Drop a Jump that targets the label immediately following it. *)
let jump_threading insns =
  let rec go = function
    | Vir.Jump l1 :: (Vir.Label l2 :: _ as rest) when String.equal l1 l2 ->
        go rest
    | insn :: rest -> insn :: go rest
    | [] -> []
  in
  go insns

let run_once insns =
  insns |> copy_propagate |> constant_fold |> jump_threading |> dead_code

let optimise ?(max_passes = 8) (program : Vir.program) =
  let rec fixpoint insns passes =
    if passes = 0 then insns
    else
      let next = run_once insns in
      if next = insns then insns else fixpoint next (passes - 1)
  in
  { program with Vir.insns = fixpoint program.Vir.insns max_passes }
