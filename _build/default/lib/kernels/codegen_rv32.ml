(* RISC-V code generator.

   The GPU executes the kernel once per work-item; the CPU gets an outer
   driver loop over global ids, which is how the paper runs the same
   OpenCL micro-benchmarks on its RISC-V baseline.

   Calling convention (set up by the benchmark harness before [Cpu.run]):
   - x10..x17 hold kernel parameters in declaration order (buffer
     parameters as byte base addresses, scalars as values);
   - x5 holds the global size, x7 the local (workgroup) size.
   Internals: x6 is the driver's global-id counter, x28/x29/x30 are code
   generator scratch, and x8/x9/x18..x27/x31 belong to the allocator. *)

open Ggpu_isa

type compiled = {
  kernel_name : string;
  code : Rv32.t array;
  param_regs : (string * int) list;
  gsize_reg : int;
  lsize_reg : int;
  max_live : int;
}

exception Too_many_params of string

let pool = [ 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 31 ]
let reg_gsize = 5
let reg_gid = 6
let reg_lsize = 7
let scratch0 = 28
let scratch1 = 29
let scratch2 = 30

let fits_imm12 v = v >= -2048l && v <= 2047l

let compile ?(optimise = true) kernel =
  let program = Lower.lower kernel in
  let program = if optimise then Opt.optimise program else program in
  let param_regs =
    List.mapi (fun i p -> (Ast.param_name p, 10 + i)) kernel.Ast.params
  in
  if List.length param_regs > 8 then raise (Too_many_params kernel.Ast.name);
  (* argument registers not taken by parameters join the allocator pool *)
  let spare_args =
    List.filter
      (fun r -> r >= 10 + List.length param_regs)
      [ 10; 11; 12; 13; 14; 15; 16; 17 ]
  in
  let phys, max_live = Regalloc.allocate program ~pool:(pool @ spare_args) in
  let param_reg name =
    match List.assoc_opt name param_regs with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "unknown parameter %s" name)
  in
  let items = ref [] in
  let emit item = items := item :: !items in
  let insn i = emit (Rv32_asm.I i) in
  let value_in ~scratch = function
    | Vir.Reg v -> phys v
    | Vir.Imm 0l -> 0
    | Vir.Imm i ->
        emit (Rv32_asm.Li32 (scratch, i));
        scratch
  in
  let mov ~dst ~src = if dst <> src then insn (Rv32.Addi (dst, src, 0l)) in
  let emit_cmp op dst ra rb =
    match op with
    | Ast.Lt -> insn (Rv32.Slt (dst, ra, rb))
    | Ast.Gt -> insn (Rv32.Slt (dst, rb, ra))
    | Ast.Ge ->
        insn (Rv32.Slt (dst, ra, rb));
        insn (Rv32.Xori (dst, dst, 1l))
    | Ast.Le ->
        insn (Rv32.Slt (dst, rb, ra));
        insn (Rv32.Xori (dst, dst, 1l))
    | Ast.Eq ->
        insn (Rv32.Xor (dst, ra, rb));
        insn (Rv32.Sltiu (dst, dst, 1l))
    | Ast.Ne ->
        insn (Rv32.Xor (dst, ra, rb));
        insn (Rv32.Sltu (dst, 0, dst))
  in
  let bin_reg op dst ra rb =
    match op with
    | Ast.Add -> insn (Rv32.Add (dst, ra, rb))
    | Ast.Sub -> insn (Rv32.Sub (dst, ra, rb))
    | Ast.Mul -> insn (Rv32.Mul (dst, ra, rb))
    | Ast.Div -> insn (Rv32.Div (dst, ra, rb))
    | Ast.Rem -> insn (Rv32.Rem (dst, ra, rb))
    | Ast.And -> insn (Rv32.And (dst, ra, rb))
    | Ast.Or -> insn (Rv32.Or (dst, ra, rb))
    | Ast.Xor -> insn (Rv32.Xor (dst, ra, rb))
    | Ast.Shl -> insn (Rv32.Sll (dst, ra, rb))
    | Ast.Shr -> insn (Rv32.Srl (dst, ra, rb))
    | Ast.Sra -> insn (Rv32.Sra (dst, ra, rb))
  in
  let bin_imm op dst ra i =
    (* returns true when an immediate form was emitted *)
    match op with
    | Ast.Add when fits_imm12 i ->
        insn (Rv32.Addi (dst, ra, i));
        true
    | Ast.Sub when fits_imm12 (Int32.neg i) ->
        insn (Rv32.Addi (dst, ra, Int32.neg i));
        true
    | Ast.And when fits_imm12 i ->
        insn (Rv32.Andi (dst, ra, i));
        true
    | Ast.Or when fits_imm12 i ->
        insn (Rv32.Ori (dst, ra, i));
        true
    | Ast.Xor when fits_imm12 i ->
        insn (Rv32.Xori (dst, ra, i));
        true
    | Ast.Shl when i >= 0l && i < 32l ->
        insn (Rv32.Slli (dst, ra, Int32.to_int i));
        true
    | Ast.Shr when i >= 0l && i < 32l ->
        insn (Rv32.Srli (dst, ra, Int32.to_int i));
        true
    | Ast.Sra when i >= 0l && i < 32l ->
        insn (Rv32.Srai (dst, ra, Int32.to_int i));
        true
    | _ -> false
  in
  (* byte address of buffer element into scratch1 *)
  let address buf idx =
    let base = param_reg buf in
    (match idx with
    | Vir.Imm i ->
        let byte = Int32.mul i 4l in
        if fits_imm12 byte then insn (Rv32.Addi (scratch1, base, byte))
        else begin
          emit (Rv32_asm.Li32 (scratch1, byte));
          insn (Rv32.Add (scratch1, scratch1, base))
        end
    | Vir.Reg v ->
        insn (Rv32.Slli (scratch1, phys v, 2));
        insn (Rv32.Add (scratch1, scratch1, base)));
    scratch1
  in
  let branch_cond op ra rb label =
    match op with
    | Ast.Eq -> emit (Rv32_asm.Beq_to (ra, rb, label))
    | Ast.Ne -> emit (Rv32_asm.Bne_to (ra, rb, label))
    | Ast.Lt -> emit (Rv32_asm.Blt_to (ra, rb, label))
    | Ast.Ge -> emit (Rv32_asm.Bge_to (ra, rb, label))
    | Ast.Gt -> emit (Rv32_asm.Blt_to (rb, ra, label))
    | Ast.Le -> emit (Rv32_asm.Bge_to (rb, ra, label))
  in
  let item_done = "__item_done" in
  let lower_insn = function
    | Vir.Bin (op, d, a, b) -> (
        let dst = phys d in
        match (a, b) with
        | Vir.Reg va, Vir.Imm i when bin_imm op dst (phys va) i -> ()
        | _ ->
            let ra = value_in ~scratch:scratch0 a in
            let rb = value_in ~scratch:scratch2 b in
            bin_reg op dst ra rb)
    | Vir.Cmp (op, d, a, b) ->
        let ra = value_in ~scratch:scratch0 a in
        let rb = value_in ~scratch:scratch2 b in
        emit_cmp op (phys d) ra rb
    | Vir.Mov (d, Vir.Imm i) -> emit (Rv32_asm.Li32 (phys d, i))
    | Vir.Mov (d, Vir.Reg v) -> mov ~dst:(phys d) ~src:(phys v)
    | Vir.Load (d, buf, idx) ->
        let addr = address buf idx in
        insn (Rv32.Lw (phys d, addr, 0))
    | Vir.Store (buf, idx, v) ->
        let rv = value_in ~scratch:scratch0 v in
        let addr = address buf idx in
        insn (Rv32.Sw (rv, addr, 0))
    | Vir.Read_special (sp, d) -> (
        let dst = phys d in
        match sp with
        | Vir.Gid -> mov ~dst ~src:reg_gid
        | Vir.GSize -> mov ~dst ~src:reg_gsize
        | Vir.LSize -> mov ~dst ~src:reg_lsize
        | Vir.Lid -> insn (Rv32.Rem (dst, reg_gid, reg_lsize))
        | Vir.WGid -> insn (Rv32.Div (dst, reg_gid, reg_lsize)))
    | Vir.Read_param (name, d) -> mov ~dst:(phys d) ~src:(param_reg name)
    | Vir.Label l -> emit (Rv32_asm.Label l)
    | Vir.Jump l -> emit (Rv32_asm.Jal_to (0, l))
    | Vir.Branch_if (op, a, b, l) ->
        let ra = value_in ~scratch:scratch0 a in
        let rb = value_in ~scratch:scratch2 b in
        branch_cond op ra rb l
    | Vir.Barrier -> () (* a sequential CPU needs no workgroup barrier *)
    | Vir.Ret -> emit (Rv32_asm.Jal_to (0, item_done))
  in
  (* driver loop *)
  emit (Rv32_asm.I (Rv32.Addi (reg_gid, 0, 0l)));
  emit (Rv32_asm.Label "__loop");
  emit (Rv32_asm.Bge_to (reg_gid, reg_gsize, "__done"));
  List.iter lower_insn program.Vir.insns;
  emit (Rv32_asm.Label item_done);
  emit (Rv32_asm.I (Rv32.Addi (reg_gid, reg_gid, 1l)));
  emit (Rv32_asm.Jal_to (0, "__loop"));
  emit (Rv32_asm.Label "__done");
  emit (Rv32_asm.I Rv32.Ecall);
  let code = Rv32_asm.assemble (List.rev !items) in
  {
    kernel_name = kernel.Ast.name;
    code;
    param_regs;
    gsize_reg = reg_gsize;
    lsize_reg = reg_lsize;
    max_live;
  }
