(** Static checks on kernels: well-scoped variables, no redefinition or
    assignment to parameters/loop counters, buffers and scalars used in
    the right positions. Establishes the invariant (every [Var] bound)
    that the interpreter and both code generators rely on. *)

type error = { where : string; message : string }

exception Error of error

val check : Ast.kernel -> unit
(** @raise Error on the first violation found. *)
