(** Harness gluing a compiled RV32 kernel to the CPU simulator: buffer
    layout in data memory, convention registers, run, read-back. *)

type result = {
  stats : Ggpu_riscv.Cpu.stats;
  buffers : (string * int32 array) list;
}

exception Setup_error of string

val run :
  ?fuel:int ->
  ?base_addr:int ->
  ?mem_words:int ->
  Codegen_rv32.compiled ->
  args:Interp.args ->
  global_size:int ->
  local_size:int ->
  unit ->
  result

val output : result -> string -> int32 array
(** @raise Setup_error on an unknown buffer name. *)
