(** Kernel language AST: a small OpenCL-C-like language. A kernel body
    executes once per work-item over 32-bit integers and global word
    buffers; one source feeds both the G-GPU and RISC-V back ends. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** signed; RISC-V M corner-case semantics *)
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr  (** logical *)
  | Sra  (** arithmetic *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge  (** signed *)

type expr =
  | Const of int32
  | Var of string
  | Global_id
  | Local_id
  | Group_id
  | Local_size
  | Global_size
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr  (** 1 if true else 0 *)
  | Load of string * expr  (** buffer, element index *)

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list  (** for v = lo to hi-1 *)
  | Barrier

type param = Buffer of string | Scalar of string
type kernel = { name : string; params : param list; body : stmt list }

(** {1 Construction helpers} *)

val const : int -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( ==: ) : expr -> expr -> expr
val var : string -> expr
val load : string -> expr -> expr

(** {1 Queries} *)

val param_name : param -> string
val buffers : kernel -> string list
val scalars : kernel -> string list
val expr_uses : (expr -> bool) -> expr -> bool
val stmt_uses : (expr -> bool) -> stmt -> bool
val kernel_uses : (expr -> bool) -> kernel -> bool
val uses_local_id : kernel -> bool
val uses_group_id : kernel -> bool
val uses_local_size : kernel -> bool
val has_barrier : kernel -> bool
