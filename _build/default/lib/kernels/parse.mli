(** Textual front end: an OpenCL-C-flavoured concrete syntax for the
    kernel language, with positions in errors. Parsed kernels are
    statically checked before being returned. *)

type position = { line : int; column : int }

exception Parse_error of { position : position; message : string }

val parse : string -> Ast.kernel list
(** Parse a source string holding one or more kernels.
    @raise Parse_error on lexical/syntactic errors.
    @raise Check.Error on semantic errors (unbound variables, ...). *)

val parse_one : string -> Ast.kernel
(** @raise Parse_error additionally when the source does not hold
    exactly one kernel. *)
