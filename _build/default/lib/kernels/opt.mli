(** Optimisation passes over the virtual IR: constant folding (with the
    targets' division corner-case semantics), algebraic simplification,
    copy propagation for single-assignment registers, branch folding,
    jump threading and dead-code elimination, iterated to a fixpoint.
    Stores, barriers, control flow and [Ret] are never removed. *)

val fold_binop : Ast.binop -> int32 -> int32 -> int32 option
val fold_cmp : Ast.cmpop -> int32 -> int32 -> int32

val optimise : ?max_passes:int -> Vir.program -> Vir.program
(** Semantics-preserving; see the property tests in
    [test/test_compiler.ml]. *)
