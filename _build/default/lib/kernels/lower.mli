(** Lowering from the kernel AST to the virtual-register IR. Named
    variables get stable virtual registers; temporaries fresh ones;
    comparison conditions lower to single conditional branches. *)

exception Lower_error of string

val lower : Ast.kernel -> Vir.program
(** @raise Check.Error if the kernel is ill-formed. *)
