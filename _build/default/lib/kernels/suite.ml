(* The paper's seven micro-benchmarks (from the AMD OpenCL SDK),
   re-written in the kernel DSL with independent OCaml reference
   implementations and deterministic input generators.

   "Input size" follows the paper's Table III convention: the number of
   work-items launched.  Each workload records a RISC-V size and a G-GPU
   size with the paper's exact ratio between them; the comparison harness
   scales RISC-V cycles by that ratio, exactly as the paper does. *)

open Ast

(* Deterministic 32-bit LCG so that every run and both targets see the
   same data. *)
let lcg_stream ~seed =
  (* Knuth multiplicative scramble, then force odd: distinct seeds give
     distinct streams (a plain [seed lor 1] would collapse 42 and 43); the multiplier is
     2654435761 = golden-ratio hash, as a signed int32 *)
  let scrambled = Int32.mul (Int32.of_int seed) (-1640531527l) in
  let state = ref (Int32.logor scrambled 1l) in
  fun () ->
    state := Int32.add (Int32.mul !state 1103515245l) 12345l;
    !state

let gen_array ~seed ~len ~modulus =
  let next = lcg_stream ~seed in
  Array.init len (fun _ ->
      let v = Int32.rem (next ()) (Int32.of_int modulus) in
      Int32.abs v)

let zeroes len = Array.make len 0l

type t = {
  name : string;
  kernel : Ast.kernel;
  output_buffer : string;
  local_size : int;
  round_size : int -> int;
      (* nearest legal size not above the request (e.g. mat_mul needs a
         perfect square) *)
  mk_args : size:int -> Interp.args;
  expected : size:int -> Interp.args -> int32 array;
  global_size : size:int -> int;
  riscv_size : int; (* Table III "RISC-V input size" *)
  ggpu_size : int; (* Table III "G-GPU input size" *)
}

let find_buffer args name =
  match List.assoc_opt name args.Interp.buffers with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Suite: missing buffer %s" name)

(* --- copy: out[i] = in[i] --------------------------------------------- *)

let copy =
  let kernel =
    {
      name = "copy";
      params = [ Buffer "src"; Buffer "dst"; Scalar "n" ];
      body =
        [
          Let ("i", Global_id);
          If (var "i" <: var "n", [ Store ("dst", var "i", load "src" (var "i")) ], []);
        ];
    }
  in
  {
    name = "copy";
    kernel;
    output_buffer = "dst";
    local_size = 256;
    round_size = (fun size -> size);
    mk_args =
      (fun ~size ->
        {
          Interp.buffers =
            [ ("src", gen_array ~seed:11 ~len:size ~modulus:1000000); ("dst", zeroes size) ];
          scalars = [ ("n", Int32.of_int size) ];
        });
    expected = (fun ~size:_ args -> Array.copy (find_buffer args "src"));
    global_size = (fun ~size -> size);
    riscv_size = 512;
    ggpu_size = 32768;
  }

(* --- vec_mul: out[i] = a[i] * b[i] ------------------------------------ *)

let vec_mul =
  let kernel =
    {
      name = "vec_mul";
      params = [ Buffer "a"; Buffer "b"; Buffer "out"; Scalar "n" ];
      body =
        [
          Let ("i", Global_id);
          If
            ( var "i" <: var "n",
              [
                Store
                  ( "out",
                    var "i",
                    load "a" (var "i") *: load "b" (var "i") );
              ],
              [] );
        ];
    }
  in
  {
    name = "vec_mul";
    kernel;
    output_buffer = "out";
    local_size = 256;
    round_size = (fun size -> size);
    mk_args =
      (fun ~size ->
        {
          Interp.buffers =
            [
              ("a", gen_array ~seed:21 ~len:size ~modulus:10000);
              ("b", gen_array ~seed:22 ~len:size ~modulus:10000);
              ("out", zeroes size);
            ];
          scalars = [ ("n", Int32.of_int size) ];
        });
    expected =
      (fun ~size args ->
        let a = find_buffer args "a" and b = find_buffer args "b" in
        Array.init size (fun i -> Int32.mul a.(i) b.(i)));
    global_size = (fun ~size -> size);
    riscv_size = 1024;
    ggpu_size = 65536;
  }

(* --- mat_mul: C = A x B with A tall (n/16 x 16) and B 16 x 16 -------- *)

(* One work-item per element of C.  The inner dimension is fixed at 16,
   so total work is linear in the number of work-items - matching the
   paper's methodology of scaling RISC-V cycle counts linearly with
   input size.  Row/column decode uses shift/mask, as the FGPU LLVM
   backend emits for power-of-two dimensions. *)

let matmul_inner = 16

let mat_mul =
  let kernel =
    {
      name = "mat_mul";
      params = [ Buffer "a"; Buffer "b"; Buffer "c"; Scalar "n" ];
      body =
        [
          Let ("i", Global_id);
          If
            ( var "i" <: var "n",
              [
                Let ("row", Binop (Shr, var "i", const 4));
                Let ("col", Binop (And, var "i", const 15));
                Let ("acc", const 0);
                For
                  ( "k",
                    const 0,
                    const matmul_inner,
                    [
                      Assign
                        ( "acc",
                          var "acc"
                          +: load "a" (Binop (Shl, var "row", const 4) +: var "k")
                             *: load "b" (Binop (Shl, var "k", const 4) +: var "col") );
                    ] );
                Store ("c", var "i", var "acc");
              ],
              [] );
        ];
    }
  in
  {
    name = "mat_mul";
    kernel;
    output_buffer = "c";
    local_size = 64;
    round_size = (fun size -> max matmul_inner (size / matmul_inner * matmul_inner));
    mk_args =
      (fun ~size ->
        {
          Interp.buffers =
            [
              ("a", gen_array ~seed:31 ~len:size ~modulus:100);
              ("b", gen_array ~seed:32 ~len:(matmul_inner * matmul_inner) ~modulus:100);
              ("c", zeroes size);
            ];
          scalars = [ ("n", Int32.of_int size) ];
        });
    expected =
      (fun ~size args ->
        let a = find_buffer args "a" and b = find_buffer args "b" in
        Array.init size (fun i ->
            let row = i lsr 4 and col = i land 15 in
            let acc = ref 0l in
            for k = 0 to matmul_inner - 1 do
              acc :=
                Int32.add !acc
                  (Int32.mul a.((row * 16) + k) b.((k * 16) + col))
            done;
            !acc));
    global_size = (fun ~size -> size);
    riscv_size = 256;
    ggpu_size = 4096 (* paper's 16x input ratio *);
  }

(* --- fir: out[i] = sum_k coeff[k] * x[i+k], 16 taps ------------------- *)

let fir_taps = 16

let fir =
  let kernel =
    {
      name = "fir";
      params = [ Buffer "x"; Buffer "coeff"; Buffer "out"; Scalar "n"; Scalar "taps" ];
      body =
        [
          Let ("i", Global_id);
          If
            ( var "i" <: var "n",
              [
                Let ("acc", const 0);
                For
                  ( "k",
                    const 0,
                    var "taps",
                    [
                      Assign
                        ( "acc",
                          var "acc"
                          +: load "coeff" (var "k")
                             *: load "x" (var "i" +: var "k") );
                    ] );
                Store ("out", var "i", var "acc");
              ],
              [] );
        ];
    }
  in
  {
    name = "fir";
    kernel;
    output_buffer = "out";
    local_size = 128;
    round_size = (fun size -> size);
    mk_args =
      (fun ~size ->
        {
          Interp.buffers =
            [
              ("x", gen_array ~seed:41 ~len:(size + fir_taps) ~modulus:1000);
              ("coeff", gen_array ~seed:42 ~len:fir_taps ~modulus:64);
              ("out", zeroes size);
            ];
          scalars =
            [ ("n", Int32.of_int size); ("taps", Int32.of_int fir_taps) ];
        });
    expected =
      (fun ~size args ->
        let x = find_buffer args "x" and coeff = find_buffer args "coeff" in
        Array.init size (fun i ->
            let acc = ref 0l in
            for k = 0 to fir_taps - 1 do
              acc := Int32.add !acc (Int32.mul coeff.(k) x.(i + k))
            done;
            !acc));
    global_size = (fun ~size -> size);
    riscv_size = 128;
    ggpu_size = 4096;
  }

(* --- div_int: out[i] = a[i] / b[i] ------------------------------------ *)

let div_int =
  let kernel =
    {
      name = "div_int";
      params = [ Buffer "a"; Buffer "b"; Buffer "out"; Scalar "n" ];
      body =
        [
          Let ("i", Global_id);
          If
            ( var "i" <: var "n",
              [
                Store ("out", var "i", load "a" (var "i") /: load "b" (var "i"));
              ],
              [] );
        ];
    }
  in
  {
    name = "div_int";
    kernel;
    output_buffer = "out";
    local_size = 256;
    round_size = (fun size -> size);
    mk_args =
      (fun ~size ->
        let b = gen_array ~seed:52 ~len:size ~modulus:97 in
        let b = Array.map (fun v -> Int32.add v 1l) b in
        {
          Interp.buffers =
            [
              ("a", gen_array ~seed:51 ~len:size ~modulus:1000000);
              ("b", b);
              ("out", zeroes size);
            ];
          scalars = [ ("n", Int32.of_int size) ];
        });
    expected =
      (fun ~size args ->
        let a = find_buffer args "a" and b = find_buffer args "b" in
        Array.init size (fun i -> Int32.div a.(i) b.(i)));
    global_size = (fun ~size -> size);
    riscv_size = 512;
    ggpu_size = 4096;
  }

(* --- xcorr: out[lag] = sum_i a[i] * b[i+lag] over an n-sample window -- *)

(* The window grows with the lag count (full O(n^2) correlation, as in
   the AMD SDK kernel): the paper scales RISC-V cycles linearly with
   input size, which deliberately understates quadratic kernels - that
   methodology, reproduced here, is why xcorr shows so little G-GPU
   speed-up in Fig. 5. *)
let xcorr_window_of ~size = size

let xcorr =
  let kernel =
    {
      name = "xcorr";
      params = [ Buffer "a"; Buffer "b"; Buffer "out"; Scalar "nlags"; Scalar "w" ];
      body =
        [
          Let ("lag", Global_id);
          If
            ( var "lag" <: var "nlags",
              [
                Let ("acc", const 0);
                For
                  ( "i",
                    const 0,
                    var "w",
                    [
                      Assign
                        ( "acc",
                          var "acc"
                          +: load "a" (var "i")
                             *: load "b" (var "i" +: var "lag") );
                    ] );
                Store ("out", var "lag", var "acc");
              ],
              [] );
        ];
    }
  in
  {
    name = "xcorr";
    kernel;
    output_buffer = "out";
    local_size = 128;
    round_size = (fun size -> size);
    mk_args =
      (fun ~size ->
        {
          Interp.buffers =
            [
              ("a", gen_array ~seed:61 ~len:(xcorr_window_of ~size) ~modulus:1000);
              ("b", gen_array ~seed:62 ~len:(xcorr_window_of ~size + size) ~modulus:1000);
              ("out", zeroes size);
            ];
          scalars =
            [ ("nlags", Int32.of_int size); ("w", Int32.of_int (xcorr_window_of ~size)) ];
        });
    expected =
      (fun ~size args ->
        let a = find_buffer args "a" and b = find_buffer args "b" in
        Array.init size (fun lag ->
            let acc = ref 0l in
            for i = 0 to xcorr_window_of ~size - 1 do
              acc := Int32.add !acc (Int32.mul a.(i) b.(i + lag))
            done;
            !acc));
    global_size = (fun ~size -> size);
    riscv_size = 64;
    ggpu_size = 1024 (* paper's 16x ratio; kept small: work is O(n^2) *);
  }

(* --- parallel_sel: parallel selection sort ---------------------------- *)

(* Each work-item ranks its element against the whole array and writes it
   to its final position; ties break by index, making the permutation
   well-defined on duplicate keys. *)
let parallel_sel =
  let kernel =
    {
      name = "parallel_sel";
      params = [ Buffer "src"; Buffer "dst"; Scalar "n" ];
      body =
        [
          Let ("i", Global_id);
          If
            ( var "i" <: var "n",
              [
                Let ("key", load "src" (var "i"));
                Let ("rank", const 0);
                For
                  ( "j",
                    const 0,
                    var "n",
                    [
                      Let ("other", load "src" (var "j"));
                      If
                        ( Binop
                            ( Or,
                              var "other" <: var "key",
                              Binop
                                ( And,
                                  var "other" ==: var "key",
                                  var "j" <: var "i" ) ),
                          [ Assign ("rank", var "rank" +: const 1) ],
                          [] );
                    ] );
                Store ("dst", var "rank", var "key");
              ],
              [] );
        ];
    }
  in
  {
    name = "parallel_sel";
    kernel;
    output_buffer = "dst";
    local_size = 128;
    round_size = (fun size -> size);
    mk_args =
      (fun ~size ->
        {
          Interp.buffers =
            [
              ("src", gen_array ~seed:71 ~len:size ~modulus:10000);
              ("dst", zeroes size);
            ];
          scalars = [ ("n", Int32.of_int size) ];
        });
    expected =
      (fun ~size:_ args ->
        let src = find_buffer args "src" in
        let sorted = Array.copy src in
        Array.sort Int32.compare sorted;
        sorted);
    global_size = (fun ~size -> size);
    riscv_size = 128;
    ggpu_size = 2048;
  }

let all = [ mat_mul; copy; vec_mul; fir; div_int; xcorr; parallel_sel ]

let find name =
  match List.find_opt (fun w -> String.equal w.name name) all with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Suite.find: unknown workload %s" name)
