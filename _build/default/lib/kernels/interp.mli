(** Reference interpreter: the semantic ground truth both code
    generators are tested against. Arithmetic follows RISC-V M
    semantics so all three executors agree bit-for-bit. *)

type args = {
  buffers : (string * int32 array) list;  (** mutated in place *)
  scalars : (string * int32) list;
}

exception Runtime_error of string
exception Unsupported of string

val run :
  Ast.kernel -> args:args -> global_size:int -> local_size:int -> unit
(** Execute every work-item sequentially.
    @raise Runtime_error on out-of-bounds accesses or missing arguments.
    @raise Unsupported for kernels containing workgroup barriers.
    @raise Check.Error if the kernel is ill-formed. *)
