(** Linear-scan register allocation over the virtual IR, with intervals
    widened across loop back edges. No spilling: the G-GPU has no
    per-work-item stack (as in FGPU), so exceeding the register file is
    a compile-time error. *)

exception
  Register_pressure of { kernel : string; needed : int; available : int }

val allocate : Vir.program -> pool:int list -> (Vir.vreg -> int) * int
(** [allocate program ~pool] returns a total lookup function from
    virtual to physical registers, and the maximum number of
    simultaneously live intervals.
    @raise Register_pressure when [pool] is exhausted.
    @raise Invalid_argument when looking up a vreg that was never live. *)
