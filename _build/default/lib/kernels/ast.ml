(* Kernel language AST.

   A small OpenCL-C-like language: a kernel body executes once per
   work-item, reads scalar parameters and global buffers, and writes
   global buffers.  Buffer indices are in 32-bit words (elements), as in
   OpenCL `int*` arithmetic.  This plays the role of the paper's OpenCL
   kernels + LLVM compiler: one source feeds both the G-GPU and the
   RISC-V code generators. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div (* signed; RISC-V semantics for corner cases *)
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr (* logical *)
  | Sra (* arithmetic *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge (* signed *)

type expr =
  | Const of int32
  | Var of string (* local variable or scalar parameter *)
  | Global_id (* get_global_id(0) *)
  | Local_id (* get_local_id(0) *)
  | Group_id (* get_group_id(0) *)
  | Local_size (* get_local_size(0) *)
  | Global_size (* get_global_size(0) *)
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr (* 1 if true else 0 *)
  | Load of string * expr (* buffer.(index) *)

type stmt =
  | Let of string * expr (* declare-and-init a local variable *)
  | Assign of string * expr (* update an existing local variable *)
  | Store of string * expr * expr (* buffer.(index) <- value *)
  | If of expr * stmt list * stmt list (* nonzero = true *)
  | While of expr * stmt list
  | For of string * expr * expr * stmt list (* for v = lo to hi-1 *)
  | Barrier (* workgroup barrier *)

type param = Buffer of string | Scalar of string

type kernel = { name : string; params : param list; body : stmt list }

let const n = Const (Int32.of_int n)
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Rem, a, b)
let ( <: ) a b = Cmp (Lt, a, b)
let ( <=: ) a b = Cmp (Le, a, b)
let ( >: ) a b = Cmp (Gt, a, b)
let ( ==: ) a b = Cmp (Eq, a, b)
let var name = Var name
let load buf idx = Load (buf, idx)

let param_name = function Buffer name -> name | Scalar name -> name

let buffers kernel =
  List.filter_map
    (function Buffer name -> Some name | Scalar _ -> None)
    kernel.params

let scalars kernel =
  List.filter_map
    (function Scalar name -> Some name | Buffer _ -> None)
    kernel.params

(* --- Structural queries used by code generators ----------------------- *)

let rec expr_uses p e =
  p e
  ||
  match e with
  | Const _ | Var _ | Global_id | Local_id | Group_id | Local_size
  | Global_size ->
      false
  | Binop (_, a, b) | Cmp (_, a, b) -> expr_uses p a || expr_uses p b
  | Load (_, idx) -> expr_uses p idx

let rec stmt_uses p = function
  | Let (_, e) | Assign (_, e) -> expr_uses p e
  | Store (_, idx, v) -> expr_uses p idx || expr_uses p v
  | If (c, a, b) ->
      expr_uses p c
      || List.exists (stmt_uses p) a
      || List.exists (stmt_uses p) b
  | While (c, body) -> expr_uses p c || List.exists (stmt_uses p) body
  | For (_, lo, hi, body) ->
      expr_uses p lo || expr_uses p hi || List.exists (stmt_uses p) body
  | Barrier -> false

let kernel_uses p kernel = List.exists (stmt_uses p) kernel.body

let uses_local_id kernel =
  kernel_uses (function Local_id -> true | _ -> false) kernel

let uses_group_id kernel =
  kernel_uses (function Group_id -> true | _ -> false) kernel

let uses_local_size kernel =
  kernel_uses (function Local_size -> true | _ -> false) kernel

let has_barrier kernel =
  let rec stmt_has = function
    | Barrier -> true
    | If (_, a, b) -> List.exists stmt_has a || List.exists stmt_has b
    | While (_, body) | For (_, _, _, body) -> List.exists stmt_has body
    | Let _ | Assign _ | Store _ -> false
  in
  List.exists stmt_has kernel.body
