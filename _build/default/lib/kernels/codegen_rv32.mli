(** RISC-V code generator: wraps the per-work-item kernel body in a
    driver loop over global ids, as the paper runs its OpenCL
    micro-benchmarks on the CPU baseline.

    Calling convention (honoured by {!Run_rv32}): x10..x17 hold
    parameters in declaration order; x5 the global size, x7 the local
    size; x6 is the driver's global-id counter. *)

type compiled = {
  kernel_name : string;
  code : Ggpu_isa.Rv32.t array;
  param_regs : (string * int) list;
  gsize_reg : int;
  lsize_reg : int;
  max_live : int;
}

exception Too_many_params of string

val compile : ?optimise:bool -> Ast.kernel -> compiled
(** See {!Codegen_fgpu.compile} for the raised exceptions. *)
