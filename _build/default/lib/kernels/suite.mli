(** The paper's seven micro-benchmarks, rewritten in the kernel DSL
    with independent OCaml reference implementations and deterministic
    input generators. "Input size" = number of work-items (Table III);
    each workload records RISC-V and G-GPU sizes with the paper's exact
    ratio between them. *)

type t = {
  name : string;
  kernel : Ast.kernel;
  output_buffer : string;
  local_size : int;
  round_size : int -> int;
      (** nearest legal size not above the request (mat_mul needs a
          multiple of 16) *)
  mk_args : size:int -> Interp.args;
  expected : size:int -> Interp.args -> int32 array;
      (** reference output computed from the args' input buffers *)
  global_size : size:int -> int;
  riscv_size : int;
  ggpu_size : int;
}

val gen_array : seed:int -> len:int -> modulus:int -> int32 array
(** Deterministic pseudo-random inputs (both targets see the same data). *)

val matmul_inner : int
val fir_taps : int
val xcorr_window_of : size:int -> int

val mat_mul : t
val copy : t
val vec_mul : t
val fir : t
val div_int : t
val xcorr : t
val parallel_sel : t

val all : t list
(** In the paper's Table III order. *)

val find : string -> t
(** @raise Invalid_argument on an unknown name. *)
