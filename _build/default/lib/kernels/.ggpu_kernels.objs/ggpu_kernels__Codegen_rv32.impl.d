lib/kernels/codegen_rv32.ml: Ast Ggpu_isa Int32 List Lower Opt Printf Regalloc Rv32 Rv32_asm Vir
