lib/kernels/regalloc.ml: Hashtbl Int List Printf Vir
