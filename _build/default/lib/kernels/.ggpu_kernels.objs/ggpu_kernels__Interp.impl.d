lib/kernels/interp.ml: Array Ast Check Hashtbl Int32 List Printf
