lib/kernels/suite.ml: Array Ast Int32 Interp List Printf String
