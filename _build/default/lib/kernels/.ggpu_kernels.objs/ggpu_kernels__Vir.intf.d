lib/kernels/vir.mli: Ast Format
