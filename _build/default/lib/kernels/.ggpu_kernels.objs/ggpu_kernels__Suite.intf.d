lib/kernels/suite.mli: Ast Interp
