lib/kernels/interp.mli: Ast
