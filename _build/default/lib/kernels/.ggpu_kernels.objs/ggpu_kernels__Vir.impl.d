lib/kernels/vir.ml: Ast Format Int32 List Printf
