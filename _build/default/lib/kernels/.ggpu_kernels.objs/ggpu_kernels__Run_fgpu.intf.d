lib/kernels/run_fgpu.mli: Codegen_fgpu Ggpu_fgpu Interp
