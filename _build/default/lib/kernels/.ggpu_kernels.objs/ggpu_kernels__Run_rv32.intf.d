lib/kernels/run_rv32.mli: Codegen_rv32 Ggpu_riscv Interp
