lib/kernels/check.mli: Ast
