lib/kernels/parse.mli: Ast
