lib/kernels/codegen_rv32.mli: Ast Ggpu_isa
