lib/kernels/ast.ml: Int32 List
