lib/kernels/run_fgpu.ml: Array Codegen_fgpu Config Ggpu_fgpu Gpu Int Int32 Interp List Printf Stats String
