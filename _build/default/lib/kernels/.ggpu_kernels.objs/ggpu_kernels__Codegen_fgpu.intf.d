lib/kernels/codegen_fgpu.mli: Ast Ggpu_isa
