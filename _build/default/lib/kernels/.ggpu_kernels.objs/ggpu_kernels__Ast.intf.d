lib/kernels/ast.mli:
