lib/kernels/opt.mli: Ast Vir
