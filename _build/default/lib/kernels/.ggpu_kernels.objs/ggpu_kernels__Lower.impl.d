lib/kernels/lower.ml: Ast Check Hashtbl List Printf Vir
