lib/kernels/codegen_fgpu.ml: Ast Fgpu_asm Fgpu_isa Ggpu_isa Int32 List Lower Opt Printf Regalloc Vir
