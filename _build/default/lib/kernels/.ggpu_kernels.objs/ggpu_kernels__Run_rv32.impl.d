lib/kernels/run_rv32.ml: Array Codegen_rv32 Cpu Ggpu_riscv Int32 Interp List Printf String
