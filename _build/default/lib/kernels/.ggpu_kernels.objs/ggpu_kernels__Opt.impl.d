lib/kernels/opt.ml: Ast Hashtbl Int32 List Option String Vir
