lib/kernels/lower.mli: Ast Vir
