lib/kernels/regalloc.mli: Vir
