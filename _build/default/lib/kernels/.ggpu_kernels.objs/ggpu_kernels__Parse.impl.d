lib/kernels/parse.ml: Array Ast Check Int32 List Printf String
