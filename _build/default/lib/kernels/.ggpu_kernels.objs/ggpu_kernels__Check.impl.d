lib/kernels/check.ml: Ast List Printf Set String
