(* Lowering: kernel AST -> virtual-register IR.

   Named variables (locals, loop counters) get one stable virtual
   register each; expression temporaries get fresh ones.  [If] conditions
   that are comparisons lower to a single conditional branch; other
   conditions compare against zero. *)

exception Lower_error of string

type state = {
  mutable next_vreg : int;
  mutable next_label : int;
  mutable rev_insns : Vir.insn list;
  vars : (string, Vir.vreg) Hashtbl.t;
}

let fresh_reg st =
  let v = st.next_vreg in
  st.next_vreg <- v + 1;
  v

let fresh_label st prefix =
  let n = st.next_label in
  st.next_label <- n + 1;
  Printf.sprintf "%s_%d" prefix n

let emit st insn = st.rev_insns <- insn :: st.rev_insns

let var_reg st name =
  match Hashtbl.find_opt st.vars name with
  | Some v -> v
  | None -> raise (Lower_error (Printf.sprintf "unbound variable %s" name))

let negate_cmp = function
  | Ast.Eq -> Ast.Ne
  | Ast.Ne -> Ast.Eq
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt

(* Evaluate an expression to a value (possibly an immediate). *)
let rec lower_value st e : Vir.value =
  match e with
  | Ast.Const v -> Vir.Imm v
  | Ast.Var name -> Vir.Reg (var_reg st name)
  | _ -> Vir.Reg (lower_to_reg st e)

and lower_to_reg st e : Vir.vreg =
  match e with
  | Ast.Var name -> var_reg st name
  | Ast.Const v ->
      let d = fresh_reg st in
      emit st (Vir.Mov (d, Vir.Imm v));
      d
  | Ast.Global_id ->
      let d = fresh_reg st in
      emit st (Vir.Read_special (Vir.Gid, d));
      d
  | Ast.Local_id ->
      let d = fresh_reg st in
      emit st (Vir.Read_special (Vir.Lid, d));
      d
  | Ast.Group_id ->
      let d = fresh_reg st in
      emit st (Vir.Read_special (Vir.WGid, d));
      d
  | Ast.Local_size ->
      let d = fresh_reg st in
      emit st (Vir.Read_special (Vir.LSize, d));
      d
  | Ast.Global_size ->
      let d = fresh_reg st in
      emit st (Vir.Read_special (Vir.GSize, d));
      d
  | Ast.Binop (op, a, b) ->
      let va = lower_value st a in
      let vb = lower_value st b in
      let d = fresh_reg st in
      emit st (Vir.Bin (op, d, va, vb));
      d
  | Ast.Cmp (op, a, b) ->
      let va = lower_value st a in
      let vb = lower_value st b in
      let d = fresh_reg st in
      emit st (Vir.Cmp (op, d, va, vb));
      d
  | Ast.Load (buf, idx) ->
      let vi = lower_value st idx in
      let d = fresh_reg st in
      emit st (Vir.Load (d, buf, vi));
      d

(* Branch to [target] when [cond] is false. *)
let lower_branch_unless st cond ~target =
  match cond with
  | Ast.Cmp (op, a, b) ->
      let va = lower_value st a in
      let vb = lower_value st b in
      emit st (Vir.Branch_if (negate_cmp op, va, vb, target))
  | _ ->
      let v = lower_value st cond in
      emit st (Vir.Branch_if (Ast.Eq, v, Vir.Imm 0l, target))

let rec lower_stmts st stmts = List.iter (lower_stmt st) stmts

and lower_stmt st stmt =
  match stmt with
  | Ast.Let (name, e) ->
      let v = lower_value st e in
      let d = fresh_reg st in
      Hashtbl.replace st.vars name d;
      emit st (Vir.Mov (d, v))
  | Ast.Assign (name, e) ->
      let v = lower_value st e in
      emit st (Vir.Mov (var_reg st name, v))
  | Ast.Store (buf, idx, value) ->
      let vi = lower_value st idx in
      let vv = lower_value st value in
      emit st (Vir.Store (buf, vi, vv))
  | Ast.If (cond, then_, []) ->
      let l_end = fresh_label st "endif" in
      lower_branch_unless st cond ~target:l_end;
      lower_stmts st then_;
      emit st (Vir.Label l_end)
  | Ast.If (cond, then_, else_) ->
      let l_else = fresh_label st "else" in
      let l_end = fresh_label st "endif" in
      lower_branch_unless st cond ~target:l_else;
      lower_stmts st then_;
      emit st (Vir.Jump l_end);
      emit st (Vir.Label l_else);
      lower_stmts st else_;
      emit st (Vir.Label l_end)
  | Ast.While (cond, body) ->
      let l_head = fresh_label st "while" in
      let l_end = fresh_label st "endwhile" in
      emit st (Vir.Label l_head);
      lower_branch_unless st cond ~target:l_end;
      lower_stmts st body;
      emit st (Vir.Jump l_head);
      emit st (Vir.Label l_end)
  | Ast.For (v, lo, hi, body) ->
      let counter = fresh_reg st in
      Hashtbl.replace st.vars v counter;
      let vlo = lower_value st lo in
      emit st (Vir.Mov (counter, vlo));
      (* the bound is evaluated once, into its own register *)
      let bound =
        match lower_value st hi with
        | Vir.Imm _ as imm -> imm
        | Vir.Reg r ->
            let b = fresh_reg st in
            emit st (Vir.Mov (b, Vir.Reg r));
            Vir.Reg b
      in
      let l_head = fresh_label st "for" in
      let l_end = fresh_label st "endfor" in
      emit st (Vir.Label l_head);
      emit st (Vir.Branch_if (Ast.Ge, Vir.Reg counter, bound, l_end));
      lower_stmts st body;
      emit st (Vir.Bin (Ast.Add, counter, Vir.Reg counter, Vir.Imm 1l));
      emit st (Vir.Jump l_head);
      emit st (Vir.Label l_end);
      Hashtbl.remove st.vars v
  | Ast.Barrier -> emit st Vir.Barrier

let lower kernel =
  Check.check kernel;
  let st =
    {
      next_vreg = 0;
      next_label = 0;
      rev_insns = [];
      vars = Hashtbl.create 16;
    }
  in
  (* scalar parameters materialise once, up front *)
  List.iter
    (fun name ->
      let d = fresh_reg st in
      Hashtbl.replace st.vars name d;
      emit st (Vir.Read_param (name, d)))
    (Ast.scalars kernel);
  lower_stmts st kernel.Ast.body;
  emit st Vir.Ret;
  {
    Vir.kernel_name = kernel.Ast.name;
    buffers = Ast.buffers kernel;
    scalars = Ast.scalars kernel;
    insns = List.rev st.rev_insns;
  }
