(* Linear-scan register allocation over the virtual IR.

   Live intervals are computed on the linear instruction order and then
   widened across loops: for every backward branch [i -> j], any interval
   intersecting [j, i] is extended to cover all of it.  This is the
   classic conservative fix that makes linear intervals sound in the
   presence of back edges.

   There is no spilling: the G-GPU has no per-work-item stack (as in
   FGPU), so exceeding the physical register file is a compile error the
   kernel author must resolve.  The paper's seven micro-benchmarks use
   well under the 20+ registers available on either target. *)

exception Register_pressure of { kernel : string; needed : int; available : int }

type interval = { vreg : Vir.vreg; mutable start_ : int; mutable stop : int }

let intervals_of program =
  let table : (Vir.vreg, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch idx v =
    match Hashtbl.find_opt table v with
    | Some itv ->
        if idx < itv.start_ then itv.start_ <- idx;
        if idx > itv.stop then itv.stop <- idx
    | None -> Hashtbl.replace table v { vreg = v; start_ = idx; stop = idx }
  in
  List.iteri
    (fun idx insn ->
      List.iter (touch idx) (Vir.defs insn);
      List.iter (touch idx) (Vir.uses insn))
    program.Vir.insns;
  table

let label_positions program =
  let labels = Hashtbl.create 16 in
  List.iteri
    (fun idx insn ->
      match insn with
      | Vir.Label name -> Hashtbl.replace labels name idx
      | _ -> ())
    program.Vir.insns;
  labels

let backward_edges program =
  let labels = label_positions program in
  let edges = ref [] in
  List.iteri
    (fun idx insn ->
      let target =
        match insn with
        | Vir.Jump name | Vir.Branch_if (_, _, _, name) ->
            Hashtbl.find_opt labels name
        | _ -> None
      in
      match target with
      | Some j when j <= idx -> edges := (j, idx) :: !edges
      | Some _ | None -> ())
    program.Vir.insns;
  !edges

(* Widen intervals across loop bodies until fixpoint. *)
let extend_over_loops table edges =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (j, i) ->
        Hashtbl.iter
          (fun _ itv ->
            let intersects = itv.start_ <= i && itv.stop >= j in
            if intersects && (itv.start_ > j || itv.stop < i) then begin
              if itv.start_ > j then itv.start_ <- j;
              if itv.stop < i then itv.stop <- i;
              changed := true
            end)
          table)
      edges
  done

(* Allocate virtual registers to the given physical register pool.
   Returns a lookup function. *)
let allocate program ~pool =
  let table = intervals_of program in
  extend_over_loops table (backward_edges program);
  let intervals =
    Hashtbl.fold (fun _ itv acc -> itv :: acc) table []
    |> List.sort (fun a b ->
           match Int.compare a.start_ b.start_ with
           | 0 -> Int.compare a.vreg b.vreg
           | c -> c)
  in
  let assignment : (Vir.vreg, int) Hashtbl.t = Hashtbl.create 64 in
  let free = ref pool in
  (* active intervals sorted by stop *)
  let active : interval list ref = ref [] in
  let expire current =
    let expired, live =
      List.partition (fun itv -> itv.stop < current) !active
    in
    List.iter
      (fun itv -> free := Hashtbl.find assignment itv.vreg :: !free)
      expired;
    active := live
  in
  let max_live = ref 0 in
  List.iter
    (fun itv ->
      expire itv.start_;
      (match !free with
      | reg :: rest ->
          Hashtbl.replace assignment itv.vreg reg;
          free := rest
      | [] ->
          raise
            (Register_pressure
               {
                 kernel = program.Vir.kernel_name;
                 needed = List.length !active + 1;
                 available = List.length pool;
               }));
      active := itv :: !active;
      max_live := max !max_live (List.length !active))
    intervals;
  let lookup vreg =
    match Hashtbl.find_opt assignment vreg with
    | Some phys -> phys
    | None ->
        invalid_arg (Printf.sprintf "Regalloc: vreg v%d was never live" vreg)
  in
  (lookup, !max_live)
