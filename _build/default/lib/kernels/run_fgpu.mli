(** Harness gluing a compiled kernel to the G-GPU simulator: buffer
    layout in global memory, parameter passing, launch, read-back —
    the OpenCL-runtime role of the paper's software stack. *)

type result = {
  stats : Ggpu_fgpu.Stats.t;
  buffers : (string * int32 array) list;  (** final contents *)
}

exception Setup_error of string

val run :
  ?config:Ggpu_fgpu.Config.t ->
  ?base_addr:int ->
  Codegen_fgpu.compiled ->
  args:Interp.args ->
  global_size:int ->
  local_size:int ->
  unit ->
  result

val output : result -> string -> int32 array
(** @raise Setup_error on an unknown buffer name. *)
