(* Static checks on kernels: well-scoped variables, no redefinition, no
   assignment to parameters or loop counters, buffers and scalars used in
   the right positions.  Rejecting bad kernels here gives both code
   generators the invariant that every [Var] is bound. *)

type error = { where : string; message : string }

exception Error of error

let fail where fmt =
  Printf.ksprintf (fun message -> raise (Error { where; message })) fmt

module Sset = Set.Make (String)

type env = {
  buffers : Sset.t;
  scalars : Sset.t;
  locals : Sset.t; (* assignable *)
  loop_vars : Sset.t; (* readable, not assignable *)
}

let rec check_expr env ~where e =
  match e with
  | Ast.Const _ | Ast.Global_id | Ast.Local_id | Ast.Group_id
  | Ast.Local_size | Ast.Global_size ->
      ()
  | Ast.Var name ->
      if
        not
          (Sset.mem name env.locals || Sset.mem name env.scalars
          || Sset.mem name env.loop_vars)
      then
        if Sset.mem name env.buffers then
          fail where "buffer %s used as a scalar value" name
        else fail where "unbound variable %s" name
  | Ast.Binop (_, a, b) | Ast.Cmp (_, a, b) ->
      check_expr env ~where a;
      check_expr env ~where b
  | Ast.Load (buf, idx) ->
      if not (Sset.mem buf env.buffers) then
        fail where "load from unknown buffer %s" buf;
      check_expr env ~where idx

let defined env name =
  Sset.mem name env.locals || Sset.mem name env.scalars
  || Sset.mem name env.loop_vars || Sset.mem name env.buffers

let rec check_stmts env ~where stmts =
  List.fold_left (fun env stmt -> check_stmt env ~where stmt) env stmts

and check_stmt env ~where stmt =
  match stmt with
  | Ast.Let (name, e) ->
      if defined env name then fail where "redefinition of %s" name;
      check_expr env ~where e;
      { env with locals = Sset.add name env.locals }
  | Ast.Assign (name, e) ->
      if not (Sset.mem name env.locals) then begin
        if Sset.mem name env.loop_vars then
          fail where "assignment to loop counter %s" name
        else if Sset.mem name env.scalars then
          fail where "assignment to parameter %s" name
        else fail where "assignment to undeclared variable %s" name
      end;
      check_expr env ~where e;
      env
  | Ast.Store (buf, idx, v) ->
      if not (Sset.mem buf env.buffers) then
        fail where "store to unknown buffer %s" buf;
      check_expr env ~where idx;
      check_expr env ~where v;
      env
  | Ast.If (c, a, b) ->
      check_expr env ~where c;
      (* branch-local declarations do not escape *)
      ignore (check_stmts env ~where a);
      ignore (check_stmts env ~where b);
      env
  | Ast.While (c, body) ->
      check_expr env ~where c;
      ignore (check_stmts env ~where body);
      env
  | Ast.For (v, lo, hi, body) ->
      if defined env v then fail where "loop counter %s shadows a binding" v;
      check_expr env ~where lo;
      check_expr env ~where hi;
      let env' = { env with loop_vars = Sset.add v env.loop_vars } in
      ignore (check_stmts env' ~where body);
      env
  | Ast.Barrier -> env

let check kernel =
  let where = kernel.Ast.name in
  let buffers = Sset.of_list (Ast.buffers kernel) in
  let scalars = Sset.of_list (Ast.scalars kernel) in
  let names = List.map Ast.param_name kernel.Ast.params in
  let dup =
    List.filter (fun n -> List.length (List.filter (String.equal n) names) > 1) names
  in
  (match dup with
  | [] -> ()
  | n :: _ -> fail where "duplicate parameter %s" n);
  let env = { buffers; scalars; locals = Sset.empty; loop_vars = Sset.empty } in
  ignore (check_stmts env ~where kernel.Ast.body)
