(* Reference interpreter for the kernel language.

   Executes a kernel sequentially, one work-item at a time, over OCaml
   arrays.  This is the semantic ground truth both code generators are
   tested against.  Arithmetic follows RISC-V M semantics for division
   corner cases so that all three executors agree bit-for-bit.

   Kernels containing workgroup barriers cannot be run item-at-a-time and
   are rejected; none of the paper's seven micro-benchmarks needs one. *)

type args = {
  buffers : (string * int32 array) list;
  scalars : (string * int32) list;
}

exception Runtime_error of string
exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let div_signed a b =
  if b = 0l then -1l
  else if a = Int32.min_int && b = -1l then Int32.min_int
  else Int32.div a b

let rem_signed a b =
  if b = 0l then a
  else if a = Int32.min_int && b = -1l then 0l
  else Int32.rem a b

let eval_binop op a b =
  match op with
  | Ast.Add -> Int32.add a b
  | Ast.Sub -> Int32.sub a b
  | Ast.Mul -> Int32.mul a b
  | Ast.Div -> div_signed a b
  | Ast.Rem -> rem_signed a b
  | Ast.And -> Int32.logand a b
  | Ast.Or -> Int32.logor a b
  | Ast.Xor -> Int32.logxor a b
  | Ast.Shl -> Int32.shift_left a (Int32.to_int b land 31)
  | Ast.Shr -> Int32.shift_right_logical a (Int32.to_int b land 31)
  | Ast.Sra -> Int32.shift_right a (Int32.to_int b land 31)

let eval_cmp op a b =
  let c = Int32.compare a b in
  let r =
    match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
  in
  if r then 1l else 0l

type item_ctx = {
  gid : int32;
  lid : int32;
  wgid : int32;
  lsize : int32;
  gsize : int32;
  vars : (string, int32) Hashtbl.t;
  bufs : (string, int32 array) Hashtbl.t;
}

let buffer ctx name =
  match Hashtbl.find_opt ctx.bufs name with
  | Some a -> a
  | None -> fail "unknown buffer %s" name

let rec eval ctx e =
  match e with
  | Ast.Const v -> v
  | Ast.Var name -> (
      match Hashtbl.find_opt ctx.vars name with
      | Some v -> v
      | None -> fail "unbound variable %s" name)
  | Ast.Global_id -> ctx.gid
  | Ast.Local_id -> ctx.lid
  | Ast.Group_id -> ctx.wgid
  | Ast.Local_size -> ctx.lsize
  | Ast.Global_size -> ctx.gsize
  | Ast.Binop (op, a, b) -> eval_binop op (eval ctx a) (eval ctx b)
  | Ast.Cmp (op, a, b) -> eval_cmp op (eval ctx a) (eval ctx b)
  | Ast.Load (buf, idx) ->
      let a = buffer ctx buf in
      let i = Int32.to_int (eval ctx idx) in
      if i < 0 || i >= Array.length a then
        fail "load %s.(%d) out of bounds (len %d)" buf i (Array.length a);
      a.(i)

let rec exec_stmts ctx stmts = List.iter (exec_stmt ctx) stmts

and exec_stmt ctx stmt =
  match stmt with
  | Ast.Let (name, e) | Ast.Assign (name, e) ->
      Hashtbl.replace ctx.vars name (eval ctx e)
  | Ast.Store (buf, idx, v) ->
      let a = buffer ctx buf in
      let i = Int32.to_int (eval ctx idx) in
      if i < 0 || i >= Array.length a then
        fail "store %s.(%d) out of bounds (len %d)" buf i (Array.length a);
      a.(i) <- eval ctx v
  | Ast.If (c, then_, else_) ->
      if eval ctx c <> 0l then exec_stmts ctx then_ else exec_stmts ctx else_
  | Ast.While (c, body) ->
      while eval ctx c <> 0l do
        exec_stmts ctx body
      done
  | Ast.For (v, lo, hi, body) ->
      let lo = eval ctx lo and hi = eval ctx hi in
      let i = ref lo in
      while Int32.compare !i hi < 0 do
        Hashtbl.replace ctx.vars v !i;
        exec_stmts ctx body;
        i := Int32.add !i 1l
      done;
      Hashtbl.remove ctx.vars v
  | Ast.Barrier ->
      raise (Unsupported "barrier in sequential reference interpreter")

(* Run [kernel] for every work item in [0, global_size).  Buffers are
   mutated in place. *)
let run kernel ~args ~global_size ~local_size =
  Check.check kernel;
  if Ast.has_barrier kernel then
    raise (Unsupported "barrier in sequential reference interpreter");
  if local_size <= 0 || global_size < 0 then
    fail "bad sizes: global=%d local=%d" global_size local_size;
  let bufs = Hashtbl.create 8 in
  List.iter (fun (name, a) -> Hashtbl.replace bufs name a) args.buffers;
  List.iter
    (fun name ->
      if not (Hashtbl.mem bufs name) then fail "missing buffer argument %s" name)
    (Ast.buffers kernel);
  List.iter
    (fun name ->
      if not (List.mem_assoc name args.scalars) then
        fail "missing scalar argument %s" name)
    (Ast.scalars kernel);
  for gid = 0 to global_size - 1 do
    let vars = Hashtbl.create 16 in
    List.iter (fun (name, v) -> Hashtbl.replace vars name v) args.scalars;
    let ctx =
      {
        gid = Int32.of_int gid;
        lid = Int32.of_int (gid mod local_size);
        wgid = Int32.of_int (gid / local_size);
        lsize = Int32.of_int local_size;
        gsize = Int32.of_int global_size;
        vars;
        bufs;
      }
    in
    exec_stmts ctx kernel.Ast.body
  done
