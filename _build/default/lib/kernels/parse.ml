(* Textual front end for the kernel language.

   An OpenCL-C-flavoured concrete syntax, so kernels can live in files
   and the repository's claim of "programmable with modern languages"
   has a real surface:

     kernel vec_mul(global int* a, global int* b, global int* out, int n) {
       int i = get_global_id(0);
       if (i < n) {
         out[i] = a[i] * b[i];
       }
     }

   Grammar (hand-written recursive descent, precedence climbing):

     kernel   := "kernel" IDENT "(" params ")" block
     param    := "global" "int" "*" IDENT | "int" IDENT
     stmt     := "int" IDENT "=" expr ";"           declaration
               | IDENT "=" expr ";"                 assignment
               | IDENT "[" expr "]" "=" expr ";"    store
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "for" "(" "int" IDENT "=" expr ";" IDENT "<" expr ";"
                  IDENT "++" ")" block
               | "barrier" "(" ")" ";"
     expr     := precedence-climbing over || && == != < <= > >= | ^ &
                 << >> + - * / %  with unary - and !
     atom     := INT | IDENT | IDENT "[" expr "]" | call | "(" expr ")"
     call     := get_global_id(0) | get_local_id(0) | get_group_id(0)
               | get_local_size(0) | get_global_size(0)

   Errors carry line/column positions. *)

type position = { line : int; column : int }

exception Parse_error of { position : position; message : string }

let error position fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { position; message })) fmt

(* --- Lexer ------------------------------------------------------------ *)

type token =
  | INT of int32
  | IDENT of string
  | KW of string (* kernel global int if else while for barrier *)
  | PUNCT of string (* ( ) { } [ ] ; , = == != < <= > >= + ++ - * / % ! & && | || ^ << >> *)
  | EOF

type lexed = { token : token; pos : position }

let keywords = [ "kernel"; "global"; "int"; "if"; "else"; "while"; "for"; "barrier" ]

let lex source =
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let n = String.length source in
  let i = ref 0 in
  let pos () = { line = !line; column = !col } in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if source.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let emit token p = tokens := { token; pos = p } :: !tokens in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident c = is_ident_start c || is_digit c in
  while !i < n do
    let p = pos () in
    let c = source.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '/' && !i + 1 < n && source.[!i + 1] = '/' then begin
      (* line comment *)
      while !i < n && source.[!i] <> '\n' do
        advance 1
      done
    end
    else if c = '/' && !i + 1 < n && source.[!i + 1] = '*' then begin
      advance 2;
      let rec skip () =
        if !i + 1 >= n then error p "unterminated comment"
        else if source.[!i] = '*' && source.[!i + 1] = '/' then advance 2
        else begin
          advance 1;
          skip ()
        end
      in
      skip ()
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit source.[!i] do
        advance 1
      done;
      let text = String.sub source start (!i - start) in
      match Int32.of_string_opt text with
      | Some v -> emit (INT v) p
      | None -> error p "integer literal %s out of 32-bit range" text
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident source.[!i] do
        advance 1
      done;
      let text = String.sub source start (!i - start) in
      if List.mem text keywords then emit (KW text) p else emit (IDENT text) p
    end
    else begin
      let two =
        if !i + 1 < n then String.sub source !i 2 else ""
      in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "<<" | ">>" | "++" ->
          emit (PUNCT two) p;
          advance 2
      | _ -> (
          match c with
          | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '=' | '<' | '>'
          | '+' | '-' | '*' | '/' | '%' | '!' | '&' | '|' | '^' ->
              emit (PUNCT (String.make 1 c)) p;
              advance 1
          | _ -> error p "unexpected character %c" c)
    end
  done;
  emit EOF (pos ());
  Array.of_list (List.rev !tokens)

(* --- Parser ----------------------------------------------------------- *)

type state = { tokens : lexed array; mutable cursor : int }

let peek st = st.tokens.(st.cursor)
let next st =
  let t = st.tokens.(st.cursor) in
  if t.token <> EOF then st.cursor <- st.cursor + 1;
  t

let token_to_string = function
  | INT v -> Int32.to_string v
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"

let expect st want =
  let t = next st in
  if t.token <> want then
    error t.pos "expected %s, found %s" (token_to_string want)
      (token_to_string t.token)

let expect_ident st =
  let t = next st in
  match t.token with
  | IDENT name -> name
  | other -> error t.pos "expected identifier, found %s" (token_to_string other)

let accept st want =
  if (peek st).token = want then begin
    ignore (next st);
    true
  end
  else false

(* the builtin id functions and their AST forms *)
let builtins =
  [
    ("get_global_id", Ast.Global_id);
    ("get_local_id", Ast.Local_id);
    ("get_group_id", Ast.Group_id);
    ("get_local_size", Ast.Local_size);
    ("get_global_size", Ast.Global_size);
  ]

(* binary operators: token -> (precedence, AST builder); higher binds
   tighter, all left-associative *)
let binops =
  [
    ("||", (1, fun a b -> Ast.Cmp (Ast.Ne, Ast.Binop (Ast.Or, Ast.Cmp (Ast.Ne, a, Ast.Const 0l), Ast.Cmp (Ast.Ne, b, Ast.Const 0l)), Ast.Const 0l)));
    ("&&", (2, fun a b -> Ast.Binop (Ast.And, Ast.Cmp (Ast.Ne, a, Ast.Const 0l), Ast.Cmp (Ast.Ne, b, Ast.Const 0l))));
    ("|", (3, fun a b -> Ast.Binop (Ast.Or, a, b)));
    ("^", (4, fun a b -> Ast.Binop (Ast.Xor, a, b)));
    ("&", (5, fun a b -> Ast.Binop (Ast.And, a, b)));
    ("==", (6, fun a b -> Ast.Cmp (Ast.Eq, a, b)));
    ("!=", (6, fun a b -> Ast.Cmp (Ast.Ne, a, b)));
    ("<", (7, fun a b -> Ast.Cmp (Ast.Lt, a, b)));
    ("<=", (7, fun a b -> Ast.Cmp (Ast.Le, a, b)));
    (">", (7, fun a b -> Ast.Cmp (Ast.Gt, a, b)));
    (">=", (7, fun a b -> Ast.Cmp (Ast.Ge, a, b)));
    ("<<", (8, fun a b -> Ast.Binop (Ast.Shl, a, b)));
    (">>", (8, fun a b -> Ast.Binop (Ast.Shr, a, b)));
    ("+", (9, fun a b -> Ast.Binop (Ast.Add, a, b)));
    ("-", (9, fun a b -> Ast.Binop (Ast.Sub, a, b)));
    ("*", (10, fun a b -> Ast.Binop (Ast.Mul, a, b)));
    ("/", (10, fun a b -> Ast.Binop (Ast.Div, a, b)));
    ("%", (10, fun a b -> Ast.Binop (Ast.Rem, a, b)));
  ]

let rec parse_expr st min_prec =
  let lhs = parse_unary st in
  parse_binop_rhs st lhs min_prec

and parse_binop_rhs st lhs min_prec =
  match (peek st).token with
  | PUNCT p -> (
      match List.assoc_opt p binops with
      | Some (prec, build) when prec >= min_prec ->
          ignore (next st);
          let rhs = parse_expr st (prec + 1) in
          parse_binop_rhs st (build lhs rhs) min_prec
      | _ -> lhs)
  | _ -> lhs

and parse_unary st =
  let t = peek st in
  match t.token with
  | PUNCT "-" ->
      ignore (next st);
      Ast.Binop (Ast.Sub, Ast.Const 0l, parse_unary st)
  | PUNCT "!" ->
      ignore (next st);
      Ast.Cmp (Ast.Eq, parse_unary st, Ast.Const 0l)
  | _ -> parse_atom st

and parse_atom st =
  let t = next st in
  match t.token with
  | INT v -> Ast.Const v
  | PUNCT "(" ->
      let e = parse_expr st 1 in
      expect st (PUNCT ")");
      e
  | IDENT name -> (
      match (peek st).token with
      | PUNCT "(" -> (
          ignore (next st);
          (* builtin call: argument must be the literal dimension 0 *)
          expect st (INT 0l);
          expect st (PUNCT ")");
          match List.assoc_opt name builtins with
          | Some ast -> ast
          | None -> error t.pos "unknown function %s" name)
      | PUNCT "[" ->
          ignore (next st);
          let idx = parse_expr st 1 in
          expect st (PUNCT "]");
          Ast.Load (name, idx)
      | _ -> Ast.Var name)
  | other -> error t.pos "expected expression, found %s" (token_to_string other)

let rec parse_block st =
  expect st (PUNCT "{");
  let rec go acc =
    if accept st (PUNCT "}") then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  let t = peek st in
  match t.token with
  | KW "int" ->
      ignore (next st);
      let name = expect_ident st in
      expect st (PUNCT "=");
      let e = parse_expr st 1 in
      expect st (PUNCT ";");
      Ast.Let (name, e)
  | KW "if" ->
      ignore (next st);
      expect st (PUNCT "(");
      let cond = parse_expr st 1 in
      expect st (PUNCT ")");
      let then_ = parse_block st in
      let else_ = if accept st (KW "else") then parse_block st else [] in
      Ast.If (cond, then_, else_)
  | KW "while" ->
      ignore (next st);
      expect st (PUNCT "(");
      let cond = parse_expr st 1 in
      expect st (PUNCT ")");
      Ast.While (cond, parse_block st)
  | KW "for" ->
      ignore (next st);
      expect st (PUNCT "(");
      expect st (KW "int");
      let v = expect_ident st in
      expect st (PUNCT "=");
      let lo = parse_expr st 1 in
      expect st (PUNCT ";");
      let v2 = expect_ident st in
      if not (String.equal v v2) then
        error t.pos "for-loop condition must test %s" v;
      expect st (PUNCT "<");
      let hi = parse_expr st 1 in
      expect st (PUNCT ";");
      let v3 = expect_ident st in
      if not (String.equal v v3) then
        error t.pos "for-loop increment must bump %s" v;
      expect st (PUNCT "++");
      expect st (PUNCT ")");
      Ast.For (v, lo, hi, parse_block st)
  | KW "barrier" ->
      ignore (next st);
      expect st (PUNCT "(");
      expect st (PUNCT ")");
      expect st (PUNCT ";");
      Ast.Barrier
  | IDENT name -> (
      ignore (next st);
      match (peek st).token with
      | PUNCT "[" ->
          ignore (next st);
          let idx = parse_expr st 1 in
          expect st (PUNCT "]");
          expect st (PUNCT "=");
          let value = parse_expr st 1 in
          expect st (PUNCT ";");
          Ast.Store (name, idx, value)
      | PUNCT "=" ->
          ignore (next st);
          let e = parse_expr st 1 in
          expect st (PUNCT ";");
          Ast.Assign (name, e)
      | other ->
          error t.pos "expected = or [ after %s, found %s" name
            (token_to_string other))
  | other -> error t.pos "expected statement, found %s" (token_to_string other)

let parse_param st =
  if accept st (KW "global") then begin
    expect st (KW "int");
    expect st (PUNCT "*");
    Ast.Buffer (expect_ident st)
  end
  else begin
    expect st (KW "int");
    Ast.Scalar (expect_ident st)
  end

let parse_kernel st =
  expect st (KW "kernel");
  let name = expect_ident st in
  expect st (PUNCT "(");
  let rec params acc =
    if accept st (PUNCT ")") then List.rev acc
    else begin
      let p = parse_param st in
      if accept st (PUNCT ",") then params (p :: acc)
      else begin
        expect st (PUNCT ")");
        List.rev (p :: acc)
      end
    end
  in
  let params = params [] in
  let body = parse_block st in
  { Ast.name; params; body }

(* Parse a source string holding one or more kernels; each is
   statically checked. *)
let parse source =
  let st = { tokens = lex source; cursor = 0 } in
  let rec go acc =
    if (peek st).token = EOF then List.rev acc
    else begin
      let kernel = parse_kernel st in
      Check.check kernel;
      go (kernel :: acc)
    end
  in
  go []

let parse_one source =
  match parse source with
  | [ kernel ] -> kernel
  | kernels ->
      error { line = 1; column = 1 } "expected exactly one kernel, found %d"
        (List.length kernels)
