(* Virtual-register IR.

   The kernel AST lowers to this flat, label-based IR with unlimited
   virtual registers; linear-scan allocation (see {!Regalloc}) then maps
   virtual registers onto each target's physical register file, and the
   code generators emit G-GPU or RV32 instructions.  Keeping one IR for
   both targets mirrors the paper's single OpenCL source feeding both the
   FGPU compiler and the RISC-V toolchain. *)

type vreg = int
type value = Reg of vreg | Imm of int32
type special = Gid | Lid | WGid | LSize | GSize

type insn =
  | Bin of Ast.binop * vreg * value * value
  | Cmp of Ast.cmpop * vreg * value * value (* dst <- cmp ? 1 : 0 *)
  | Mov of vreg * value
  | Load of vreg * string * value (* dst <- buffer.(idx) *)
  | Store of string * value * value (* buffer.(idx) <- v *)
  | Read_special of special * vreg
  | Read_param of string * vreg (* scalar kernel parameter *)
  | Label of string
  | Jump of string
  | Branch_if of Ast.cmpop * value * value * string (* branch when true *)
  | Barrier
  | Ret

type program = {
  kernel_name : string;
  buffers : string list; (* in parameter order *)
  scalars : string list;
  insns : insn list;
}

let special_to_string = function
  | Gid -> "gid"
  | Lid -> "lid"
  | WGid -> "wgid"
  | LSize -> "lsize"
  | GSize -> "gsize"

let value_to_string = function
  | Reg v -> Printf.sprintf "v%d" v
  | Imm i -> Int32.to_string i

let binop_to_string = function
  | Ast.Add -> "add"
  | Ast.Sub -> "sub"
  | Ast.Mul -> "mul"
  | Ast.Div -> "div"
  | Ast.Rem -> "rem"
  | Ast.And -> "and"
  | Ast.Or -> "or"
  | Ast.Xor -> "xor"
  | Ast.Shl -> "shl"
  | Ast.Shr -> "shr"
  | Ast.Sra -> "sra"

let cmpop_to_string = function
  | Ast.Eq -> "eq"
  | Ast.Ne -> "ne"
  | Ast.Lt -> "lt"
  | Ast.Le -> "le"
  | Ast.Gt -> "gt"
  | Ast.Ge -> "ge"

let insn_to_string = function
  | Bin (op, d, a, b) ->
      Printf.sprintf "v%d = %s %s, %s" d (binop_to_string op)
        (value_to_string a) (value_to_string b)
  | Cmp (op, d, a, b) ->
      Printf.sprintf "v%d = %s %s, %s" d (cmpop_to_string op)
        (value_to_string a) (value_to_string b)
  | Mov (d, v) -> Printf.sprintf "v%d = %s" d (value_to_string v)
  | Load (d, buf, idx) ->
      Printf.sprintf "v%d = %s[%s]" d buf (value_to_string idx)
  | Store (buf, idx, v) ->
      Printf.sprintf "%s[%s] = %s" buf (value_to_string idx)
        (value_to_string v)
  | Read_special (sp, d) -> Printf.sprintf "v%d = %s" d (special_to_string sp)
  | Read_param (name, d) -> Printf.sprintf "v%d = param %s" d name
  | Label l -> l ^ ":"
  | Jump l -> "jump " ^ l
  | Branch_if (op, a, b, l) ->
      Printf.sprintf "br.%s %s, %s -> %s" (cmpop_to_string op)
        (value_to_string a) (value_to_string b) l
  | Barrier -> "barrier"
  | Ret -> "ret"

let pp_program fmt p =
  Format.fprintf fmt "kernel %s@." p.kernel_name;
  List.iter (fun i -> Format.fprintf fmt "  %s@." (insn_to_string i)) p.insns

(* Registers read / written by an instruction. *)
let value_reg = function Reg v -> [ v ] | Imm _ -> []

let uses = function
  | Bin (_, _, a, b) | Cmp (_, _, a, b) -> value_reg a @ value_reg b
  | Mov (_, v) -> value_reg v
  | Load (_, _, idx) -> value_reg idx
  | Store (_, idx, v) -> value_reg idx @ value_reg v
  | Branch_if (_, a, b, _) -> value_reg a @ value_reg b
  | Read_special _ | Read_param _ | Label _ | Jump _ | Barrier | Ret -> []

let defs = function
  | Bin (_, d, _, _) | Cmp (_, d, _, _) | Mov (d, _) | Load (d, _, _)
  | Read_special (_, d)
  | Read_param (_, d) ->
      [ d ]
  | Store _ | Label _ | Jump _ | Branch_if _ | Barrier | Ret -> []
