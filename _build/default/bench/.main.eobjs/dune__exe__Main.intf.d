bench/main.mli:
