(* Published numbers from the paper, used by the harness to print
   paper-vs-measured for every table and figure.

   Table I: 12 logic-synthesis versions.
   Table II: wirelength per metal layer for the four physical versions.
   Table III: benchmark input sizes and cycle counts.
   Figs. 5/6 are derived from Tables I and III by the paper's formulas. *)

type table1_row = {
  cus : int;
  freq : int;
  area : float;
  mem_area : float;
  ff : int;
  comb : int;
  memories : int;
  leak_mw : float;
  dyn_w : float;
  total_w : float;
}

let table1 =
  [
    { cus = 1; freq = 500; area = 4.19; mem_area = 2.68; ff = 119778; comb = 127826; memories = 51; leak_mw = 4.62; dyn_w = 1.97; total_w = 2.055 };
    { cus = 2; freq = 500; area = 7.45; mem_area = 4.64; ff = 229171; comb = 214243; memories = 93; leak_mw = 8.54; dyn_w = 3.63; total_w = 3.77 };
    { cus = 4; freq = 500; area = 13.84; mem_area = 8.56; ff = 437318; comb = 387246; memories = 177; leak_mw = 16.07; dyn_w = 6.88; total_w = 7.14 };
    { cus = 8; freq = 500; area = 26.51; mem_area = 16.39; ff = 852094; comb = 714256; memories = 345; leak_mw = 30.79; dyn_w = 13.33; total_w = 13.86 };
    { cus = 1; freq = 590; area = 4.66; mem_area = 3.15; ff = 120035; comb = 128894; memories = 68; leak_mw = 4.73; dyn_w = 2.57; total_w = 2.66 };
    { cus = 2; freq = 590; area = 8.16; mem_area = 5.34; ff = 229172; comb = 221946; memories = 120; leak_mw = 8.73; dyn_w = 4.63; total_w = 4.81 };
    { cus = 4; freq = 590; area = 15.03; mem_area = 9.72; ff = 436807; comb = 397995; memories = 224; leak_mw = 16.41; dyn_w = 8.70; total_w = 9.02 };
    { cus = 8; freq = 590; area = 28.65; mem_area = 18.49; ff = 850559; comb = 737232; memories = 432; leak_mw = 31.25; dyn_w = 16.81; total_w = 17.40 };
    { cus = 1; freq = 667; area = 4.77; mem_area = 3.26; ff = 120035; comb = 130802; memories = 71; leak_mw = 4.65; dyn_w = 2.62; total_w = 2.72 };
    { cus = 2; freq = 667; area = 8.27; mem_area = 5.45; ff = 229172; comb = 222028; memories = 123; leak_mw = 8.72; dyn_w = 4.69; total_w = 4.87 };
    { cus = 4; freq = 667; area = 15.15; mem_area = 9.83; ff = 436807; comb = 398124; memories = 227; leak_mw = 16.43; dyn_w = 8.75; total_w = 9.07 };
    { cus = 8; freq = 667; area = 28.69; mem_area = 18.60; ff = 848511; comb = 730506; memories = 435; leak_mw = 30.21; dyn_w = 19.10; total_w = 19.76 };
  ]

(* Table II: wirelength per metal layer in um. *)
let table2 =
  [
    ("M2", [ 3185110.; 15340072.; 20314957.; 25637608. ]);
    ("M3", [ 5132356.; 21219705.; 27928578.; 34890963. ]);
    ("M4", [ 2987163.; 9866798.; 19209669.; 22387405. ]);
    ("M5", [ 2713788.; 11293663.; 21953276.; 26355211. ]);
    ("M6", [ 1430594.; 8801517.; 14074944.; 11111664. ]);
    ("M7", [ 616666.; 2915533.; 6316321.; 5315697. ]);
  ]

let table2_columns = [ "1CU@500MHz"; "1CU@667MHz"; "8CU@500MHz"; "8CU@600MHz" ]

(* Table III: (kernel, rv size, ggpu size, rv kcycles, [1/2/4/8 CU kcycles]) *)
let table3 =
  [
    ("mat_mul", 128, 2048, 202., [ 48.; 28.; 18.; 14. ]);
    ("copy", 512, 32768, 71., [ 73.; 36.; 24.; 22. ]);
    ("vec_mul", 1024, 65536, 78., [ 100.; 49.; 31.; 26. ]);
    ("fir", 128, 4096, 542., [ 694.; 358.; 185.; 169. ]);
    ("div_int", 512, 4096, 32., [ 209.; 105.; 57.; 62. ]);
    ("xcorr", 256, 4096, 542., [ 5343.; 2802.; 1467.; 2079. ]);
    ("parallel_sel", 128, 2048, 765., [ 5979.; 3157.; 1656.; 1660. ]);
  ]

(* Fig. 5/6 derived values per the paper's formulas. *)
let fig5 =
  List.map
    (fun (kernel, rv_size, gp_size, rv_kc, gp_kcs) ->
      let ratio = float_of_int gp_size /. float_of_int rv_size in
      (kernel, List.map (fun kc -> rv_kc *. ratio /. kc) gp_kcs))
    table3

(* area ratios quoted in the paper for Fig. 6: 1 CU = 6.5x RISC-V,
   8 CU = 41x *)
let area_ratio_of_cus = [ (1, 6.5); (2, 12.6); (4, 23.7); (8, 41.0) ]

let fig6 =
  List.map
    (fun (kernel, speedups) ->
      ( kernel,
        List.map2
          (fun (_, ratio) speedup -> speedup /. ratio)
          area_ratio_of_cus speedups ))
    fig5
