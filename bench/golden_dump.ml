(* One-off: print the golden table rows in test_golden.ml format.

   Each row is the pinned (superopt peephole ON, the shipping
   configuration) stats vector; the trailing comment carries the
   pre-peephole cycle count so re-pins document what the pass bought
   on that row. *)
open Ggpu_kernels
open Ggpu_fgpu

let cycles_of ~superopt (w : Suite.t) ~size ~cus =
  let compiled = Codegen_fgpu.compile ~superopt w.Suite.kernel in
  let args = w.Suite.mk_args ~size in
  let config = Config.with_cus Config.default cus in
  Run_fgpu.run ~config ~backend:Gpu.Interp compiled ~args
    ~global_size:(w.Suite.global_size ~size)
    ~local_size:(min w.Suite.local_size size) ()

let () =
  List.iter
    (fun (name, size, cus) ->
      let w = Suite.find name in
      let size = w.Suite.round_size size in
      let r = cycles_of ~superopt:true w ~size ~cus in
      let pre = cycles_of ~superopt:false w ~size ~cus in
      let vals =
        Stats.to_assoc r.Run_fgpu.stats
        |> List.map (fun (_, v) -> string_of_int v)
        |> String.concat "; "
      in
      let cyc = r.Run_fgpu.stats.Stats.cycles in
      let pre_cyc = pre.Run_fgpu.stats.Stats.cycles in
      Printf.printf "    (* pre-peephole: %d cycles%s *)\n" pre_cyc
        (if pre_cyc = cyc then " (no rewrite fired)"
         else
           Printf.sprintf ", -%.2f%%"
             (100.0 *. float_of_int (pre_cyc - cyc) /. float_of_int pre_cyc));
      Printf.printf "    ( %S, %d, %d,\n      [ %s ] );\n" name size cus vals)
    [ ("mat_mul", 1024, 1); ("mat_mul", 1024, 4);
      ("copy", 2048, 1); ("copy", 2048, 4);
      ("vec_mul", 2048, 1); ("vec_mul", 2048, 4);
      ("fir", 1024, 1); ("fir", 1024, 4);
      ("div_int", 1024, 1); ("div_int", 1024, 4);
      ("xcorr", 512, 1); ("xcorr", 512, 4);
      ("parallel_sel", 512, 1); ("parallel_sel", 512, 4) ]
