(* One-off: print the golden table rows in test_golden.ml format. *)
open Ggpu_kernels
open Ggpu_fgpu

let () =
  List.iter
    (fun (name, size, cus) ->
      let w = Suite.find name in
      let size = w.Suite.round_size size in
      let compiled = Codegen_fgpu.compile w.Suite.kernel in
      let args = w.Suite.mk_args ~size in
      let config = Config.with_cus Config.default cus in
      let r =
        Run_fgpu.run ~config ~backend:Gpu.Interp compiled ~args
          ~global_size:(w.Suite.global_size ~size)
          ~local_size:(min w.Suite.local_size size) ()
      in
      let vals =
        Stats.to_assoc r.Run_fgpu.stats
        |> List.map (fun (_, v) -> string_of_int v)
        |> String.concat "; "
      in
      Printf.printf "    ( %S, %d, %d,\n      [ %s ] );\n" name size cus vals)
    [ ("mat_mul", 1024, 1); ("mat_mul", 1024, 4);
      ("copy", 2048, 1); ("copy", 2048, 4);
      ("vec_mul", 2048, 1); ("vec_mul", 2048, 4);
      ("fir", 1024, 1); ("fir", 1024, 4);
      ("div_int", 1024, 1); ("div_int", 1024, 4);
      ("xcorr", 512, 1); ("xcorr", 512, 4);
      ("parallel_sel", 512, 1); ("parallel_sel", 512, 4) ]
