(* Scratch A/B harness: alternate backends in-process to separate real
   engine differences from machine noise, and report simulated cycles
   with and without the superopt peephole so the cycle delta rides
   along with throughput.  Usage:
     dune exec bench/ab.exe -- [kernel] [size] [reps] [t|i|both]    *)

let () =
  let kernel = try Sys.argv.(1) with _ -> "parallel_sel" in
  let size = try int_of_string Sys.argv.(2) with _ -> 2048 in
  let reps = try int_of_string Sys.argv.(3) with _ -> 5 in
  let w = Ggpu_kernels.Suite.find kernel in
  let size = w.Ggpu_kernels.Suite.round_size size in
  let config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default 4 in
  let compile superopt =
    Ggpu_kernels.Codegen_fgpu.compile ~superopt w.Ggpu_kernels.Suite.kernel
  in
  let compiled = compile true in
  let run ?(compiled = compiled) backend =
    let args = w.Ggpu_kernels.Suite.mk_args ~size in
    let t0 = Unix.gettimeofday () in
    let r =
      Ggpu_kernels.Run_fgpu.run ~config ~backend compiled ~args
        ~global_size:(w.Ggpu_kernels.Suite.global_size ~size)
        ~local_size:(min w.Ggpu_kernels.Suite.local_size size)
        ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    (r.Ggpu_kernels.Run_fgpu.stats, wall)
  in
  (* one-off simulated-cycle A/B: peephole on (the shipping default)
     vs off — deterministic, so a single run of each suffices *)
  let opt_stats, _ = run Ggpu_fgpu.Gpu.Threaded in
  let base_stats, _ = run ~compiled:(compile false) Ggpu_fgpu.Gpu.Threaded in
  let opt_cyc = opt_stats.Ggpu_fgpu.Stats.cycles in
  let base_cyc = base_stats.Ggpu_fgpu.Stats.cycles in
  Printf.printf "%s size=%d: %d cycles (no-superopt %d, delta -%.2f%%)\n%!"
    kernel size opt_cyc base_cyc
    (100.0 *. float_of_int (base_cyc - opt_cyc) /. float_of_int (max 1 base_cyc));
  let engines =
    match try Sys.argv.(4) with _ -> "both" with
    | "t" -> [ ("threaded", Ggpu_fgpu.Gpu.Threaded) ]
    | "i" -> [ ("interp", Ggpu_fgpu.Gpu.Interp) ]
    | _ ->
        [ ("threaded", Ggpu_fgpu.Gpu.Threaded); ("interp", Ggpu_fgpu.Gpu.Interp) ]
  in
  List.iter (fun (_, b) -> ignore (run b)) engines (* warm *);
  let best = Hashtbl.create 2 in
  for _ = 1 to reps do
    List.iter
      (fun (name, b) ->
        let stats, wall = run b in
        let wf = stats.Ggpu_fgpu.Stats.wf_instructions in
        let prev = try Hashtbl.find best name with Not_found -> infinity in
        if wall < prev then Hashtbl.replace best name wall;
        Printf.printf "%-9s %8.1f ms  %10d cyc  %.3e wf/s\n%!" name (wall *. 1e3)
          stats.Ggpu_fgpu.Stats.cycles
          (float_of_int wf /. wall))
      engines
  done;
  Hashtbl.iter (fun n v -> Printf.printf "best %-9s %8.1f ms\n" n (v *. 1e3)) best
