(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, printing measured values next to the published ones, plus
   the ablation studies from DESIGN.md and Bechamel micro-benchmarks of
   the flow itself.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1 fig5  # selected experiments
   Experiments: table1 table2 table3 fig3 fig4 fig5 fig6 ablation-dse
   ablation-mem future-gmc fi perf perf-sim serve *)

open Ggpu_core

let tech = Ggpu_tech.Tech.default_65nm

let section title =
  Printf.printf "\n=== %s %s\n" title
    (String.make (max 0 (66 - String.length title)) '=')

(* --- Table I ----------------------------------------------------------- *)

let run_table1 () =
  section "Table I: 12 G-GPU versions after logic synthesis";
  Printf.printf
    "%-10s | %9s %9s | %8s %8s | %8s %8s | %6s %6s | %6s %6s | %7s %7s\n"
    "version" "area" "paper" "ff" "paper" "comb" "paper" "#mem" "paper"
    "leak" "paper" "dyn" "paper";
  let rows = Versions.table1 ~tech () in
  List.iter2
    (fun (r : Ggpu_synth.Report.row) (p : Paper_data.table1_row) ->
      Printf.printf
        "%d@%dMHz | %9.2f %9.2f | %8d %8d | %8d %8d | %6d %6d | %6.2f %6.2f \
         | %7.2f %7.2f\n"
        r.Ggpu_synth.Report.num_cus r.Ggpu_synth.Report.freq_mhz
        r.Ggpu_synth.Report.total_area_mm2 p.Paper_data.area
        r.Ggpu_synth.Report.ff p.Paper_data.ff r.Ggpu_synth.Report.comb
        p.Paper_data.comb r.Ggpu_synth.Report.memories p.Paper_data.memories
        r.Ggpu_synth.Report.leakage_mw p.Paper_data.leak_mw
        r.Ggpu_synth.Report.dynamic_w p.Paper_data.dyn_w)
    rows Paper_data.table1

(* --- Physical versions (shared by Table II / Figs. 3-4) ---------------- *)

let physical_cache : Flow.implementation list option ref = ref None

let physical () =
  match !physical_cache with
  | Some impls -> impls
  | None ->
      let impls = Versions.physical ~tech () in
      physical_cache := Some impls;
      impls

let run_table2 () =
  section "Table II: routing wirelength per metal layer (um)";
  let impls = physical () in
  Printf.printf "%-6s" "layer";
  List.iter (Printf.printf " | %10s (paper)    ") Paper_data.table2_columns;
  print_newline ();
  List.iter
    (fun (layer, paper_values) ->
      Printf.printf "%-6s" layer;
      List.iteri
        (fun i paper ->
          let impl = List.nth impls i in
          let um = Ggpu_layout.Route.layer_um impl.Flow.route layer in
          Printf.printf " | %10.3e (%9.3e)" um paper)
        paper_values;
      print_newline ())
    Paper_data.table2;
  List.iter
    (fun impl ->
      Printf.printf "%s: achieved %.0f MHz%s\n"
        (Spec.to_string impl.Flow.spec)
        impl.Flow.achieved_mhz
        (match impl.Flow.spec_check with
        | Ok () -> ""
        | Error vs ->
            "  [" ^ String.concat "; " (List.map Spec.violation_to_string vs)
            ^ "]"))
    impls

let run_figs34 () =
  section "Figs. 3 and 4: layouts (1 CU and 8 CU, relaxed vs optimised)";
  List.iter
    (fun impl ->
      Printf.printf "\n-- %s (achieved %.0f MHz) --\n"
        (Spec.to_string impl.Flow.spec)
        impl.Flow.achieved_mhz;
      print_string (Ggpu_layout.Render.render impl.Flow.floorplan);
      Format.printf "map: %a@." Map.pp impl.Flow.map)
    (physical ())

(* --- Table III / Figs. 5-6 --------------------------------------------- *)

let table3_cache : Compare.row list option ref = ref None

let table3_rows () =
  match !table3_cache with
  | Some rows -> rows
  | None ->
      let rows = Compare.table3 () in
      table3_cache := Some rows;
      rows

let run_table3 () =
  section "Table III: input sizes and cycle counts (kcycles)";
  Printf.printf
    "(sizes differ from the paper; shapes are compared - see EXPERIMENTS.md)\n";
  Format.printf "%a" Compare.pp_table3 (table3_rows ());
  Printf.printf "\npaper reference:\n%-13s %8s %8s %10s %10s %10s %10s %10s\n"
    "kernel" "rv size" "gp size" "rv kc" "1CU" "2CU" "4CU" "8CU";
  List.iter
    (fun (kernel, rv_size, gp_size, rv_kc, gp_kcs) ->
      Printf.printf "%-13s %8d %8d %10.0f" kernel rv_size gp_size rv_kc;
      List.iter (Printf.printf " %10.0f") gp_kcs;
      print_newline ())
    Paper_data.table3

let print_speedups ~label ~paper rows =
  Printf.printf "%-13s | %28s | %28s\n" "kernel"
    ("measured " ^ label ^ " (1/2/4/8 CU)")
    "paper (1/2/4/8 CU)";
  List.iter
    (fun (s : Compare.speedups) ->
      let values =
        match label with "raw" -> s.Compare.raw | _ -> s.Compare.derated
      in
      Printf.printf "%-13s |" s.Compare.kernel;
      List.iter (fun (_, v) -> Printf.printf " %6.1f" v) values;
      Printf.printf " |";
      (match List.assoc_opt s.Compare.kernel paper with
      | Some paper_values -> List.iter (Printf.printf " %6.1f") paper_values
      | None -> ());
      print_newline ())
    rows

let run_fig5 () =
  section "Fig. 5: raw speed-up over RISC-V";
  let speedups = Compare.speedups ~tech (table3_rows ()) in
  print_speedups ~label:"raw" ~paper:Paper_data.fig5 speedups

let run_fig6 () =
  section "Fig. 6: speed-up over RISC-V derated by area";
  let speedups = Compare.speedups ~tech (table3_rows ()) in
  Printf.printf "G-GPU/RISC-V area ratios (measured): ";
  List.iter
    (fun (cus, area) ->
      Printf.printf "%dCU=%.1fx " cus (area /. Compare.riscv_area_mm2 tech))
    (Compare.ggpu_areas_mm2 ~tech ());
  Printf.printf " (paper: 1CU=6.5x, 8CU=41x)\n";
  print_speedups ~label:"derated" ~paper:Paper_data.fig6 speedups

(* --- Ablations ---------------------------------------------------------- *)

let run_ablation_dse () =
  section "Ablation A: DSE strategy (1 CU @ 667 MHz target)";
  let try_strategy name strategy =
    let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
    match Dse.explore ~strategy tech nl ~num_cus:1 ~period_ns:1.5 with
    | result ->
        let stats = Ggpu_hw.Netlist.stats nl in
        let area = Ggpu_synth.Area.of_netlist tech nl in
        Printf.printf
          "%-14s: meets 667 MHz with %2d divisions + %2d pipelines | %d \
           macros | %.2f mm2\n"
          name
          (Map.divisions result.Dse.map)
          (Map.pipelines result.Dse.map)
          stats.Ggpu_hw.Netlist.macro_count area.Ggpu_synth.Area.total_mm2
    | exception Dse.Cannot_meet { best_ns; _ } ->
        Printf.printf "%-14s: CANNOT MEET (best period %.3f ns = %.0f MHz)\n"
          name best_ns (1000.0 /. best_ns)
  in
  try_strategy "full planner" Dse.Full;
  try_strategy "division-only" Dse.Division_only;
  try_strategy "pipeline-only" Dse.Pipeline_only

let run_ablation_mem () =
  section "Ablation B: AXI bandwidth sensitivity (8 CU, cycles)";
  let kernels = [ "copy"; "xcorr" ] in
  Printf.printf "%-8s" "kernel";
  List.iter
    (fun p -> Printf.printf " %12s" (Printf.sprintf "%d port(s)" p))
    [ 1; 2; 4 ];
  print_newline ();
  List.iter
    (fun name ->
      let w = Ggpu_kernels.Suite.find name in
      Printf.printf "%-8s" name;
      List.iter
        (fun ports ->
          let config =
            Ggpu_fgpu.Config.validate
              {
                (Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default 8) with
                Ggpu_fgpu.Config.axi =
                  {
                    Ggpu_fgpu.Config.default.Ggpu_fgpu.Config.axi with
                    Ggpu_fgpu.Config.data_ports = ports;
                  };
              }
          in
          let size = w.Ggpu_kernels.Suite.ggpu_size in
          let args = w.Ggpu_kernels.Suite.mk_args ~size in
          let compiled =
            Ggpu_kernels.Codegen_fgpu.compile w.Ggpu_kernels.Suite.kernel
          in
          let result =
            Ggpu_kernels.Run_fgpu.run ~config compiled ~args
              ~global_size:(w.Ggpu_kernels.Suite.global_size ~size)
              ~local_size:w.Ggpu_kernels.Suite.local_size ()
          in
          Printf.printf " %12d"
            result.Ggpu_kernels.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles)
        [ 1; 2; 4 ];
      print_newline ())
    kernels

let run_future_gmc () =
  section "Future work: replicated memory controller for the 8-CU layout";
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:8 in
  let _ = Dse.explore tech nl ~num_cus:8 ~period_ns:1.5 in
  List.iter
    (fun copies ->
      let fp =
        Ggpu_layout.Floorplan.build ~gmc_copies:copies tech nl ~num_cus:8
      in
      let post = Ggpu_layout.Timing_post.analyse tech nl fp in
      Printf.printf
        "%d GMC copies: worst CU-GMC route %.2f mm -> achievable %.0f MHz\n"
        copies
        (Ggpu_layout.Floorplan.worst_cu_gmc_distance_mm fp)
        (Ggpu_layout.Timing_post.quantised_mhz post))
    [ 1; 2; 4 ]

(* --- Fault injection ----------------------------------------------------- *)

(* 1000-trial SEU campaigns on a streaming and a divider-bound kernel,
   against both simulators.  The G-GPU campaigns run on 4 CUs so the
   fault population sees multi-CU structures (per-CU wavefront pools,
   shared cache contention).  Shape checks are documented in
   EXPERIMENTS.md: register-file AVF > tag-array AVF, pc faults mostly
   DUE, straight-line GPU kernels cannot hang while the RISC-V
   work-item loop can. *)
let run_fi () =
  section "Fault injection: AVF of copy and div_int (1000 SEU trials each)";
  let avf_of report structure =
    match List.assoc_opt structure report.Ggpu_fi.Campaign.by_structure with
    | Some c -> Ggpu_fi.Campaign.avf c
    | None -> 0.0
  in
  let reports =
    List.concat_map
      (fun kernel ->
        let w = Ggpu_kernels.Suite.find kernel in
        List.map
          (fun target ->
            let size =
              match target with
              | Ggpu_fi.Campaign.Ggpu _ ->
                  min 2048 w.Ggpu_kernels.Suite.ggpu_size
              | Ggpu_fi.Campaign.Rv32 -> w.Ggpu_kernels.Suite.riscv_size
            in
            let r =
              Ggpu_fi.Campaign.run ~target ~workload:w ~size ~trials:1000
                ~seed:42 ()
            in
            Format.printf "%a@.@." Ggpu_fi.Campaign.pp_report r;
            r)
          [ Ggpu_fi.Campaign.Ggpu 4; Ggpu_fi.Campaign.Rv32 ])
      [ "copy"; "div_int" ]
  in
  (* golden-run counters of the copy campaign's configuration, via
     Stats.to_assoc (no pp scraping) *)
  let w = Ggpu_kernels.Suite.copy in
  let args = w.Ggpu_kernels.Suite.mk_args ~size:2048 in
  let compiled = Ggpu_kernels.Codegen_fgpu.compile w.Ggpu_kernels.Suite.kernel in
  let golden =
    Ggpu_kernels.Run_fgpu.run
      ~config:(Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default 4)
      compiled ~args ~global_size:2048 ~local_size:256 ()
  in
  Printf.printf "golden copy/4cu counters:";
  List.iter
    (fun (name, v) -> Printf.printf " %s=%d" name v)
    (Ggpu_fgpu.Stats.to_assoc golden.Ggpu_kernels.Run_fgpu.stats);
  print_newline ();
  (* shape summary over the four campaigns *)
  List.iter
    (fun r ->
      match r.Ggpu_fi.Campaign.target with
      | Ggpu_fi.Campaign.Ggpu _ ->
          Printf.printf
            "%s/%s: wf_reg AVF %.3f vs cache_tag AVF %.3f | mask AVF %.3f\n"
            r.Ggpu_fi.Campaign.kernel
            (Ggpu_fi.Campaign.target_name r.Ggpu_fi.Campaign.target)
            (avf_of r Ggpu_fi.Fault.Wf_reg)
            (avf_of r Ggpu_fi.Fault.Cache_tag)
            (avf_of r Ggpu_fi.Fault.Wf_mask)
      | Ggpu_fi.Campaign.Rv32 ->
          Printf.printf "%s/rv32: reg AVF %.3f | hangs %d (work-item loop)\n"
            r.Ggpu_fi.Campaign.kernel
            (avf_of r Ggpu_fi.Fault.Rv_reg)
            r.Ggpu_fi.Campaign.total.Ggpu_fi.Campaign.hang)
    reports

(* --- Performance: incremental STA + parallel version grid -------------- *)

(* Three-way comparison of the full Table-I sweep:

     seed    sequential versions, full STA recompute per DSE step,
             legacy hashtable engine (the PR 0 behaviour);
     legacy  parallel versions + incremental STA on the legacy engine
             (the PR 1 flow, the baseline the CSR rewrite must beat);
     csr     the same flow on the CSR levelized engine (the default).

   All three produce bit-identical Table I rows; only wall time and the
   STA-call counters differ.  Timings land in BENCH_dse.json; CI gates
   csr-vs-legacy via PERF_DSE_MIN_SPEEDUP. *)
let bench_json_path = "BENCH_dse.json"

let run_perf_dse () =
  section "perf: CSR levelized STA + parallel version grid";
  (* representative single-version counters *)
  let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
  let result = Dse.explore tech nl ~num_cus:1 ~period_ns:1.5 in
  Format.printf "dse 1CU@667: %d iterations | %a@." result.Dse.iterations
    Dse.pp_perf result.Dse.perf;
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let seed () =
    Versions.table1_syntheses ~tech ~parallel:false ~incremental:false
      ~sta:Ggpu_synth.Timing.Legacy ()
  in
  let legacy () =
    Versions.table1_syntheses ~tech ~sta:Ggpu_synth.Timing.Legacy ()
  in
  let csr () = Versions.table1_syntheses ~tech () in
  (* warm every path once so cold-start (GC, page faults) does not
     inflate whichever variant runs first, then take the best of two
     timed sweeps per variant, interleaved against machine noise *)
  ignore (seed ());
  ignore (legacy ());
  ignore (csr ());
  let best_of_2 f =
    let v, w1 = time f in
    let _, w2 = time f in
    (v, Float.min w1 w2)
  in
  let seed_syntheses, seed_s = best_of_2 seed in
  let _legacy_syntheses, legacy_s = best_of_2 legacy in
  let csr_syntheses, csr_s = best_of_2 csr in
  let sta_calls syntheses =
    List.fold_left
      (fun acc s -> acc + s.Flow.syn_perf.Dse.sta_calls)
      0 syntheses
  in
  let sta_full syntheses =
    List.fold_left
      (fun acc s -> acc + s.Flow.syn_perf.Dse.sta_full)
      0 syntheses
  in
  let speedup_vs_seed = seed_s /. csr_s in
  let speedup_vs_legacy = legacy_s /. csr_s in
  let domains = Parallel.default_domains () in
  Printf.printf
    "table1 (12 versions): seed %.3fs (%d full STA recomputes) -> legacy \
     %.3fs -> csr %.3fs (%d STA calls, %d full)\n\
    \  %.1fx vs seed | %.2fx vs legacy incremental, on %d domains\n"
    seed_s (sta_full seed_syntheses) legacy_s csr_s
    (sta_calls csr_syntheses)
    (sta_full csr_syntheses)
    speedup_vs_seed speedup_vs_legacy domains;
  let oc = open_out bench_json_path in
  Printf.fprintf oc
    {|{
  "benchmark": "versions-table1",
  "seed_wall_s": %.6f,
  "legacy_wall_s": %.6f,
  "new_wall_s": %.6f,
  "speedup": %.3f,
  "csr_speedup_vs_legacy": %.3f,
  "domains": %d,
  "seed_sta_full_recomputes": %d,
  "new_sta_calls": %d,
  "new_sta_full_recomputes": %d,
  "dse_1cu_667": {
    "iterations": %d,
    "sta_calls": %d,
    "sta_full": %d,
    "sta_incremental": %d,
    "sta_wall_s": %.6f,
    "edit_wall_s": %.6f,
    "total_wall_s": %.6f
  }
}
|}
    seed_s legacy_s csr_s speedup_vs_seed speedup_vs_legacy domains
    (sta_full seed_syntheses)
    (sta_calls csr_syntheses)
    (sta_full csr_syntheses)
    result.Dse.iterations result.Dse.perf.Dse.sta_calls
    result.Dse.perf.Dse.sta_full result.Dse.perf.Dse.sta_incremental
    result.Dse.perf.Dse.sta_wall_s result.Dse.perf.Dse.edit_wall_s
    result.Dse.perf.Dse.total_wall_s;
  close_out oc;
  Printf.printf "wrote %s\n" bench_json_path;
  (* CI gates: the grid must keep beating the seed baseline BENCH_dse.json
     has tracked since PR 1 by a wide margin, and the CSR engine must not
     regress against the legacy incremental flow it replaced *)
  (match Sys.getenv_opt "PERF_DSE_MIN_SPEEDUP" with
  | Some threshold when speedup_vs_seed < float_of_string threshold ->
      Printf.eprintf "perf-dse: speedup vs seed %.2f below required %s\n"
        speedup_vs_seed threshold;
      exit 1
  | _ -> ());
  match Sys.getenv_opt "PERF_DSE_MIN_CSR_SPEEDUP" with
  | Some threshold when speedup_vs_legacy < float_of_string threshold ->
      Printf.eprintf "perf-dse: speedup vs legacy STA %.2f below required %s\n"
        speedup_vs_legacy threshold;
      exit 1
  | _ -> ()

(* --- Analytical placement ------------------------------------------------ *)

(* The placer study behind the >8-CU scaling story: for every CU count
   the flow supports, implement the optimised 667-MHz version with the
   estimator's stacked-columns floorplan, then re-place the explored
   netlist analytically and route both floorplans at the same period.
   Records est-vs-placed wirelength, worst CU-GMC routes, the achievable
   frequency of each floorplan (contention derate folded in beyond
   8 CUs) and flow/placer wall clocks in BENCH_place.json.

   Hard invariant (always fatal): the placement is bit-identical at 1,
   2 and 4 domains.  CI additionally gates the 8-CU wirelength win via
   PERF_PLACE_MIN_WL_RATIO (estimated/placed total). *)
let place_json_path = "BENCH_place.json"

let run_perf_place () =
  section "perf-place: analytical placement vs estimator floorplan";
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let open Ggpu_layout in
  let study cus =
    let spec = Spec.make ~num_cus:cus ~freq_mhz:667 () in
    let impl, flow_s = time (fun () -> Flow.implement ~tech spec) in
    let nl = impl.Flow.netlist in
    let period_ns = 1000.0 /. impl.Flow.achieved_mhz in
    let base_macros = Flow.base_macro_count ~num_cus:cus in
    let placed, place_s =
      time (fun () -> Place.place ~domains:1 tech nl ~num_cus:cus)
    in
    let deterministic =
      List.for_all
        (fun domains ->
          (Place.place ~domains tech nl ~num_cus:cus).Place.floorplan
          = placed.Place.floorplan)
        [ 2; 4 ]
    in
    (* both floorplans routed at the period the estimator flow achieved,
       so the totals differ only by geometry *)
    let placed_route =
      Route.estimate tech nl placed.Place.floorplan ~period_ns ~base_macros
    in
    let placed_post = Timing_post.analyse tech nl placed.Place.floorplan in
    let placed_mhz =
      Float.min
        (float_of_int spec.Spec.freq_mhz)
        (Timing_post.quantise
           (placed_post.Timing_post.achieved_mhz
           *. impl.Flow.contention_derate))
    in
    ( cus,
      impl,
      flow_s,
      placed,
      place_s,
      deterministic,
      placed_route,
      placed_mhz )
  in
  let rows = List.map study [ 1; 2; 4; 8; 16; 32; 64 ] in
  Printf.printf "%4s %12s %12s %7s %9s %9s %9s %9s %7s %7s %4s\n" "cus"
    "est_wire_um" "pl_wire_um" "ratio" "est_gmc" "pl_gmc" "est_mhz" "pl_mhz"
    "flow_s" "place_s" "det";
  List.iter
    (fun (cus, impl, flow_s, placed, place_s, det, pl_route, pl_mhz) ->
      Printf.printf
        "%4d %12.0f %12.0f %7.3f %7.3fmm %7.3fmm %9.0f %9.0f %7.3f %7.3f %4s\n"
        cus impl.Flow.route.Route.total_um pl_route.Route.total_um
        (impl.Flow.route.Route.total_um /. pl_route.Route.total_um)
        (Floorplan.worst_cu_gmc_distance_mm impl.Flow.floorplan)
        (Floorplan.worst_cu_gmc_distance_mm placed.Place.floorplan)
        impl.Flow.achieved_mhz pl_mhz flow_s place_s
        (if det then "yes" else "NO"))
    rows;
  let all_deterministic =
    List.for_all (fun (_, _, _, _, _, det, _, _) -> det) rows
  in
  let wl_ratio_8cu =
    List.find_map
      (fun (cus, impl, _, _, _, _, pl_route, _) ->
        if cus = 8 then
          Some (impl.Flow.route.Route.total_um /. pl_route.Route.total_um)
        else None)
      rows
    |> Option.value ~default:0.0
  in
  Printf.printf
    "8-CU optimised version: placed wirelength is %.3fx below the estimator \
     floorplan\n"
    wl_ratio_8cu;
  let open Ggpu_obs.Json in
  let row_obj (cus, impl, flow_s, placed, place_s, det, pl_route, pl_mhz) =
    Obj
      [
        ("cus", Int cus);
        ("target_mhz", Int impl.Flow.spec.Spec.freq_mhz);
        ("contention_derate", Float impl.Flow.contention_derate);
        ("flow_wall_s", Float flow_s);
        ("place_wall_s", Float place_s);
        ("place_iterations", Int placed.Place.iterations);
        ("place_overflow", Float placed.Place.overflow);
        ("deterministic_1_2_4", Bool det);
        ( "estimator",
          Obj
            [
              ("total_wire_um", Float impl.Flow.route.Route.total_um);
              ("inter_wire_um", Float impl.Flow.route.Route.inter_um);
              ( "worst_cu_gmc_mm",
                Float (Floorplan.worst_cu_gmc_distance_mm impl.Flow.floorplan)
              );
              ("achieved_mhz", Float impl.Flow.achieved_mhz);
            ] );
        ( "placed",
          Obj
            [
              ("total_wire_um", Float pl_route.Route.total_um);
              ("inter_wire_um", Float pl_route.Route.inter_um);
              ( "worst_cu_gmc_mm",
                Float
                  (Floorplan.worst_cu_gmc_distance_mm placed.Place.floorplan)
              );
              ("achieved_mhz", Float pl_mhz);
              ( "wirelength_ratio",
                Float
                  (impl.Flow.route.Route.total_um /. pl_route.Route.total_um)
              );
            ] );
      ]
  in
  let doc =
    Obj
      [
        ("benchmark", String "analytic-placement");
        ("freq_mhz", Int 667);
        ("iterations", Int Place.default_iterations);
        ("deterministic_1_2_4", Bool all_deterministic);
        ("wirelength_ratio_8cu", Float wl_ratio_8cu);
        ("rows", List (List.map row_obj rows));
      ]
  in
  let oc = open_out place_json_path in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" place_json_path;
  if not all_deterministic then begin
    Printf.eprintf
      "perf-place: placement is NOT bit-identical across domain counts\n";
    exit 1
  end;
  match Sys.getenv_opt "PERF_PLACE_MIN_WL_RATIO" with
  | Some threshold when wl_ratio_8cu < float_of_string threshold ->
      Printf.eprintf
        "perf-place: 8-CU wirelength ratio %.3f below required %s\n"
        wl_ratio_8cu threshold;
      exit 1
  | _ -> ()

(* --- Simulator throughput ----------------------------------------------- *)

(* Simulated cycles per wall-second of both simulators over the whole
   kernel suite: the number that decides how long compare/fi campaigns
   take, tracked in BENCH_sim.json so simulator slowdowns are visible
   across PRs the same way DSE slowdowns are. *)
let sim_json_path = "BENCH_sim.json"

(* Aggregate fgpu_cycles_per_s of the PR 3 BENCH_sim.json (the last
   list-scheduler / boxed-register simulator), measured on the same
   methodology below.  The ratio against it is the simulator-rewrite
   speedup tracked across PRs. *)
let seed_fgpu_cycles_per_s = 835897.00278148404

(* Aggregate fgpu_wf_instr_per_s of the PR 4 BENCH_sim.json (the
   event-heap interpreter, before the threaded-code backend).  The
   headline work-rate ratio against it is the backend speedup. *)
let pr4_fgpu_wf_instr_per_s = 2681197.0502227317

(* Kernels that issue analytic multi-cycle divides advance simulated
   time ~66 cycles per wavefront instruction, so their cycles/s is a
   derived, inflated number; wf-instructions/s is the comparable one. *)
let uses_div (program : Ggpu_isa.Fgpu_isa.t array) =
  Array.exists
    (function
      | Ggpu_isa.Fgpu_isa.Alu ((Div | Rem), _, _, _)
      | Ggpu_isa.Fgpu_isa.Alui ((Div | Rem), _, _, _) ->
          true
      | _ -> false)
    program

type sim_row = {
  r_name : string;
  r_gsize : int;
  r_cycles : int;
  r_wf : int;
  r_wall_thr : float;  (* threaded backend, the headline engine *)
  r_wall_int : float;  (* interpreter backend, the A/B reference *)
  r_div_derived : bool;  (* cycles/s inflated by analytic divides *)
  r_rsize : int;
  r_rv_cycles : int;
  r_rv_wall : float;
}

let run_perf_sim () =
  section "perf-sim: simulator throughput over the kernel suite";
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let fgpu_config = Ggpu_fgpu.Config.with_cus Ggpu_fgpu.Config.default 4 in
  (* domain fan-out inside each simulation (the CU-parallel split);
     1 keeps the measurement directly comparable with earlier PRs *)
  let exec_domains =
    match Sys.getenv_opt "PERF_SIM_EXEC_DOMAINS" with
    | Some d -> max 1 (int_of_string d)
    | None -> 1
  in
  (* the seed measured setup (mk_args, buffer layout) inside the timed
     region; keep doing so, or speedup_vs_seed compares different work *)
  let row_of w =
    let open Ggpu_kernels in
    let gsize = w.Suite.round_size (min 8192 w.Suite.ggpu_size) in
    let compiled = Codegen_fgpu.compile w.Suite.kernel in
    let launch backend =
      time (fun () ->
          Run_fgpu.run ~config:fgpu_config ~backend ~domains:exec_domains
            compiled
            ~args:(w.Suite.mk_args ~size:gsize)
            ~global_size:(w.Suite.global_size ~size:gsize)
            ~local_size:(min w.Suite.local_size gsize)
            ())
    in
    (* warm each backend once — first-touch page faults, code warmup
       and GC growth land here, not in the timed runs — and use the
       warm pair as a correctness sweep: both engines must produce the
       same stats on every suite kernel, every run *)
    let result_thr, _ = launch Ggpu_fgpu.Gpu.Threaded in
    let result_int, _ = launch Ggpu_fgpu.Gpu.Interp in
    if
      Ggpu_fgpu.Stats.to_assoc result_thr.Run_fgpu.stats
      <> Ggpu_fgpu.Stats.to_assoc result_int.Run_fgpu.stats
    then begin
      Printf.eprintf "perf-sim: %s: threaded and interp stats differ\n"
        w.Suite.name;
      exit 1
    end;
    (* best-of-2 timed launches per backend, interleaved so neither
       engine systematically absorbs transient machine noise *)
    let best backend =
      let _, w1 = launch backend in
      let _, w2 = launch backend in
      Float.min w1 w2
    in
    let wall_thr = best Ggpu_fgpu.Gpu.Threaded in
    let wall_int = best Ggpu_fgpu.Gpu.Interp in
    let rsize = w.Suite.round_size w.Suite.riscv_size in
    let rv_cycles, rv_wall =
      let compiled = Codegen_rv32.compile w.Suite.kernel in
      let result, wall =
        time (fun () ->
            Run_rv32.run compiled
              ~args:(w.Suite.mk_args ~size:rsize)
              ~global_size:(w.Suite.global_size ~size:rsize)
              ~local_size:(min w.Suite.local_size rsize)
              ())
      in
      (result.Run_rv32.stats.Ggpu_riscv.Cpu.cycles, wall)
    in
    {
      r_name = w.Suite.name;
      r_gsize = gsize;
      r_cycles = result_thr.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles;
      r_wf = result_thr.Run_fgpu.stats.Ggpu_fgpu.Stats.wf_instructions;
      r_wall_thr = wall_thr;
      r_wall_int = wall_int;
      r_div_derived = uses_div compiled.Codegen_fgpu.code;
      r_rsize = rsize;
      r_rv_cycles = rv_cycles;
      r_rv_wall = rv_wall;
    }
  in
  let rows = List.map row_of Ggpu_kernels.Suite.all in
  let per_s cycles wall =
    if wall <= 0.0 then 0.0 else float_of_int cycles /. wall
  in
  (* cycles/s is incomparable across kernels: div_int's analytic
     multi-cycle divides make its simulated time advance ~66 cycles per
     issued instruction, so its cycles/s is inflated ~10x (see
     EXPERIMENTS.md) and flagged as derived.  wf-instructions/s charges
     each kernel for the work the simulator actually performs and is
     the headline number. *)
  Printf.printf "%-13s %8s %10s %12s %12s %12s %8s %12s\n" "kernel" "gp size"
    "gp cyc" "thr insn/s" "int insn/s" "gp cyc/s" "rv size" "rv cyc/s";
  List.iter
    (fun r ->
      Printf.printf "%-13s %8d %10d %12.3e %12.3e %11.3e%s %8d %12.3e\n"
        r.r_name r.r_gsize r.r_cycles
        (per_s r.r_wf r.r_wall_thr)
        (per_s r.r_wf r.r_wall_int)
        (per_s r.r_cycles r.r_wall_thr)
        (if r.r_div_derived then "*" else " ")
        r.r_rsize
        (per_s r.r_rv_cycles r.r_rv_wall))
    rows;
  Printf.printf "(* = derived: analytic multi-cycle divides inflate cycles/s)\n";
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let fgpu_cycles = total (fun r -> float_of_int r.r_cycles) in
  let fgpu_wf = total (fun r -> float_of_int r.r_wf) in
  let fgpu_wall = total (fun r -> r.r_wall_thr) in
  let fgpu_wall_int = total (fun r -> r.r_wall_int) in
  let rv_cycles = total (fun r -> float_of_int r.r_rv_cycles) in
  let rv_wall = total (fun r -> r.r_rv_wall) in
  let agg_cycles_per_s =
    if fgpu_wall > 0.0 then fgpu_cycles /. fgpu_wall else 0.0
  in
  let agg_wf_per_s = if fgpu_wall > 0.0 then fgpu_wf /. fgpu_wall else 0.0 in
  let agg_wf_per_s_int =
    if fgpu_wall_int > 0.0 then fgpu_wf /. fgpu_wall_int else 0.0
  in
  let speedup_vs_seed = agg_cycles_per_s /. seed_fgpu_cycles_per_s in
  let wf_speedup_vs_pr4 = agg_wf_per_s /. pr4_fgpu_wf_instr_per_s in
  let backend_ratio =
    if agg_wf_per_s_int > 0.0 then agg_wf_per_s /. agg_wf_per_s_int else 0.0
  in
  Printf.printf
    "totals (4 CUs, %d exec domain(s)):\n\
    \  threaded %.3e wf-insns/s | %.2fx vs PR 4 interp | %.2fx vs interp \
     same tree\n\
    \  threaded %.3e cycles/s (derived) | %.2fx vs seed\n\
    \  interp   %.3e wf-insns/s | rv32 %.3e cycles/s\n"
    exec_domains agg_wf_per_s wf_speedup_vs_pr4 backend_ratio agg_cycles_per_s
    speedup_vs_seed agg_wf_per_s_int
    (if rv_wall > 0.0 then rv_cycles /. rv_wall else 0.0);
  (* superopt peephole: dynamic cycle reduction per kernel, the
     mined-rule payoff.  Baseline recompiles with ~superopt:false; the
     headline rows above already run the optimised (default) code, so
     only the baseline needs a fresh launch.  Gated in CI via
     PERF_SIM_MIN_CYCLE_REDUCTION on the aggregate percentage. *)
  let reduction_rows =
    List.map2
      (fun w (r : sim_row) ->
        let open Ggpu_kernels in
        let compiled = Codegen_fgpu.compile ~superopt:false w.Suite.kernel in
        let result =
          Run_fgpu.run ~config:fgpu_config ~backend:Ggpu_fgpu.Gpu.Threaded
            ~domains:exec_domains compiled
            ~args:(w.Suite.mk_args ~size:r.r_gsize)
            ~global_size:(w.Suite.global_size ~size:r.r_gsize)
            ~local_size:(min w.Suite.local_size r.r_gsize)
            ()
        in
        let base = result.Run_fgpu.stats.Ggpu_fgpu.Stats.cycles in
        (r.r_name, base, r.r_cycles))
      Ggpu_kernels.Suite.all rows
  in
  let reduction_pct base opt =
    if base <= 0 then 0.0
    else 100.0 *. float_of_int (base - opt) /. float_of_int base
  in
  Printf.printf "superopt peephole cycle reduction (4 CUs):\n";
  List.iter
    (fun (name, base, opt) ->
      Printf.printf "  %-13s %10d -> %10d  (-%.2f%%)\n" name base opt
        (reduction_pct base opt))
    reduction_rows;
  let red_base =
    List.fold_left (fun acc (_, b, _) -> acc + b) 0 reduction_rows
  in
  let red_opt = List.fold_left (fun acc (_, _, o) -> acc + o) 0 reduction_rows in
  let kernels_improved =
    List.length (List.filter (fun (_, b, o) -> o < b) reduction_rows)
  in
  let agg_reduction_pct = reduction_pct red_base red_opt in
  Printf.printf "  total %d -> %d cycles (-%.2f%%), %d of %d kernels improved\n"
    red_base red_opt agg_reduction_pct kernels_improved
    (List.length reduction_rows);
  (* the same suite as a (kernel x CU) grid on the domain pool: the
     wall-clock face of Suite_runner, single timed region *)
  let domains =
    match Sys.getenv_opt "PERF_SIM_DOMAINS" with
    | Some d -> max 1 (int_of_string d)
    | None -> Ggpu_par.Parallel.default_domains ()
  in
  let grid_jobs = Ggpu_kernels.Suite_runner.grid ~cu_counts:[ 1; 4 ] () in
  let (grid_results, _merged), grid_wall =
    time (fun () ->
        Ggpu_kernels.Suite_runner.run ~domains ~sim_domains:exec_domains
          grid_jobs)
  in
  let grid_cycles =
    List.fold_left
      (fun acc (r : Ggpu_kernels.Suite_runner.result) ->
        acc + r.Ggpu_kernels.Suite_runner.stats.Ggpu_fgpu.Stats.cycles)
      0 grid_results
  in
  let grid_ok =
    List.for_all
      (fun (r : Ggpu_kernels.Suite_runner.result) ->
        r.Ggpu_kernels.Suite_runner.correct)
      grid_results
  in
  Printf.printf
    "grid: %d jobs (1 and 4 CU) on %d domains: %.3e cycles/s%s\n"
    (List.length grid_results)
    domains
    (per_s grid_cycles grid_wall)
    (if grid_ok then "" else "  [OUTPUT MISMATCH]");
  (* the same grid with the PMU attached: its wall-time delta is the
     instrumentation overhead the ISSUE caps at 10%, gated in CI via
     PERF_SIM_MAX_PMU_OVERHEAD on this number *)
  let (pmu_results, _), pmu_wall =
    time (fun () ->
        Ggpu_kernels.Suite_runner.run ~domains ~sim_domains:exec_domains
          ~pmu:true grid_jobs)
  in
  let pmu_cycles =
    List.fold_left
      (fun acc (r : Ggpu_kernels.Suite_runner.result) ->
        acc + r.Ggpu_kernels.Suite_runner.stats.Ggpu_fgpu.Stats.cycles)
      0 pmu_results
  in
  let pmu_identical = pmu_cycles = grid_cycles in
  let pmu_overhead_pct =
    if grid_wall > 0.0 then 100.0 *. (pmu_wall -. grid_wall) /. grid_wall
    else 0.0
  in
  Printf.printf
    "grid+pmu: %.3e cycles/s, overhead %+.2f%% vs uninstrumented%s\n"
    (per_s pmu_cycles pmu_wall) pmu_overhead_pct
    (if pmu_identical then "" else "  [CYCLE MISMATCH]");
  let open Ggpu_obs.Json in
  (* per-kernel fgpu numbers are the threaded (default) backend;
     *_interp_* fields are the A/B reference on the same tree.
     fgpu_cycles_per_s_derived marks kernels whose cycles/s is inflated
     by analytic multi-cycle divides — compare wf_instr_per_s instead. *)
  let kernel_obj r =
    Obj
      [
        ("kernel", String r.r_name);
        ("fgpu_size", Int r.r_gsize);
        ("fgpu_cycles", Int r.r_cycles);
        ("fgpu_wf_instructions", Int r.r_wf);
        ("fgpu_backend", String "threaded");
        ("fgpu_wall_s", Float r.r_wall_thr);
        ("fgpu_cycles_per_s", Float (per_s r.r_cycles r.r_wall_thr));
        ("fgpu_cycles_per_s_derived", Bool r.r_div_derived);
        ("fgpu_wf_instr_per_s", Float (per_s r.r_wf r.r_wall_thr));
        ("fgpu_interp_wall_s", Float r.r_wall_int);
        ("fgpu_interp_wf_instr_per_s", Float (per_s r.r_wf r.r_wall_int));
        ("rv32_size", Int r.r_rsize);
        ("rv32_cycles", Int r.r_rv_cycles);
        ("rv32_wall_s", Float r.r_rv_wall);
        ("rv32_cycles_per_s", Float (per_s r.r_rv_cycles r.r_rv_wall));
      ]
  in
  let doc =
    Obj
      [
        ("benchmark", String "simulator-throughput");
        ("fgpu_cus", Int 4);
        ("fgpu_backend", String "threaded");
        ("fgpu_exec_domains", Int exec_domains);
        ("kernels", List (List.map kernel_obj rows));
        ( "totals",
          Obj
            [
              ("fgpu_wf_instr_per_s", Float agg_wf_per_s);
              ("fgpu_interp_wf_instr_per_s", Float agg_wf_per_s_int);
              ("backend_wf_speedup", Float backend_ratio);
              ("pr4_fgpu_wf_instr_per_s", Float pr4_fgpu_wf_instr_per_s);
              ("wf_speedup_vs_pr4", Float wf_speedup_vs_pr4);
              ("fgpu_cycles_per_s", Float agg_cycles_per_s);
              ("fgpu_cycles_per_s_derived", Bool true);
              ("seed_fgpu_cycles_per_s", Float seed_fgpu_cycles_per_s);
              ("speedup_vs_seed", Float speedup_vs_seed);
              ("rv32_cycles_per_s", Float (per_s (int_of_float rv_cycles) rv_wall));
            ] );
        ( "grid",
          Obj
            [
              ("jobs", Int (List.length grid_results));
              ("domains", Int domains);
              ("cycles", Int grid_cycles);
              ("wall_s", Float grid_wall);
              ("cycles_per_s", Float (per_s grid_cycles grid_wall));
              ("outputs_correct", Bool grid_ok);
            ] );
        ( "pmu",
          Obj
            [
              ("wall_s", Float pmu_wall);
              ("cycles_per_s", Float (per_s pmu_cycles pmu_wall));
              ("overhead_pct", Float pmu_overhead_pct);
              ("cycles_identical", Bool pmu_identical);
            ] );
        ( "cycle_reduction",
          Obj
            [
              ( "kernels",
                List
                  (List.map
                     (fun (name, base, opt) ->
                       Obj
                         [
                           ("kernel", String name);
                           ("baseline_cycles", Int base);
                           ("cycles", Int opt);
                           ("reduction_pct", Float (reduction_pct base opt));
                         ])
                     reduction_rows) );
              ("baseline_cycles", Int red_base);
              ("cycles", Int red_opt);
              ("reduction_pct", Float agg_reduction_pct);
              ("kernels_improved", Int kernels_improved);
            ] );
      ]
  in
  let oc = open_out sim_json_path in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" sim_json_path;
  if not grid_ok then begin
    Printf.eprintf "perf-sim: grid produced wrong kernel output\n";
    exit 1
  end;
  if not pmu_identical then begin
    Printf.eprintf
      "perf-sim: PMU-instrumented grid changed simulated cycles (%d vs %d)\n"
      pmu_cycles grid_cycles;
    exit 1
  end;
  (match Sys.getenv_opt "PERF_SIM_MAX_PMU_OVERHEAD" with
  | Some limit when pmu_overhead_pct > float_of_string limit ->
      Printf.eprintf "perf-sim: PMU overhead %.2f%% above allowed %s%%\n"
        pmu_overhead_pct limit;
      exit 1
  | _ -> ());
  (* CI smoke gate: PERF_SIM_MIN_SPEEDUP=1.0 catches a simulator
     regression back below the seed without being flaky about the
     machine the runner happens to land on *)
  (match Sys.getenv_opt "PERF_SIM_MIN_SPEEDUP" with
  | Some threshold when speedup_vs_seed < float_of_string threshold ->
      Printf.eprintf
        "perf-sim: speedup_vs_seed %.2f below required %s\n" speedup_vs_seed
        threshold;
      exit 1
  | _ -> ());
  (* gate the superopt win: the mined table must keep buying back an
     aggregate cycle reduction over the unoptimised codegen *)
  match Sys.getenv_opt "PERF_SIM_MIN_CYCLE_REDUCTION" with
  | Some threshold when agg_reduction_pct < float_of_string threshold ->
      Printf.eprintf
        "perf-sim: superopt cycle reduction %.2f%% below required %s%% (%d \
         kernels improved)\n"
        agg_reduction_pct threshold kernels_improved;
      exit 1
  | _ -> ()

(* --- Serving: memo cache + batched scheduler ----------------------------- *)

(* Load-generates the planning service in-process: replays a seeded mix
   of synth/sim/perf requests through one Engine on a persistent domain
   pool, in pipelined windows like the socket client sends, and records
   latency percentiles, throughput and cache effectiveness in
   BENCH_serve.json.  CI gates the hit rate (SERVE_MIN_HIT_RATE); the
   mix draws from a ~114-key universe so a 2000-request replay is
   overwhelmingly warm — a cache regression shows up as a cliff, not
   noise. *)
let serve_json_path = "BENCH_serve.json"

let run_serve () =
  section "serve: cached planning service replay";
  let getenv_int name default =
    match Sys.getenv_opt name with
    | Some v -> max 1 (int_of_string v)
    | None -> default
  in
  let n = getenv_int "SERVE_REQUESTS" 2000 in
  let seed = getenv_int "SERVE_SEED" 7 in
  let batch = getenv_int "SERVE_BATCH" 64 in
  let domains =
    match Sys.getenv_opt "SERVE_DOMAINS" with
    | Some d -> max 1 (int_of_string d)
    | None -> Ggpu_par.Parallel.default_domains ()
  in
  let pool = Ggpu_par.Parallel.Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Ggpu_par.Parallel.Pool.shutdown pool)
  @@ fun () ->
  let engine = Ggpu_serve.Engine.create ~pool () in
  let reqs = Ggpu_serve.Workload.mix ~seed ~n () in
  let lat_us = ref [] in
  let ok = ref 0 and cached = ref 0 and bad = ref 0 in
  let rec take k = function
    | x :: rest when k > 0 ->
        let chunk, rest = take (k - 1) rest in
        (x :: chunk, rest)
    | rest -> ([], rest)
  in
  let t0 = Unix.gettimeofday () in
  let rec windows = function
    | [] -> ()
    | reqs ->
        let chunk, rest = take batch reqs in
        let sent_at = Unix.gettimeofday () in
        let responses = Ggpu_serve.Engine.process engine chunk in
        let finished_at = Unix.gettimeofday () in
        (* every request in the window completes when its batch does —
           the same latency the pipelined socket client observes *)
        let window_us = (finished_at -. sent_at) *. 1e6 in
        List.iter
          (fun (resp : Ggpu_serve.Proto.response) ->
            lat_us := window_us :: !lat_us;
            match resp.Ggpu_serve.Proto.status with
            | Ggpu_serve.Proto.Done ->
                incr ok;
                if resp.Ggpu_serve.Proto.cached then incr cached
            | _ -> incr bad)
          responses;
        windows rest
  in
  windows reqs;
  let wall_s = Unix.gettimeofday () -. t0 in
  let lats = Array.of_list !lat_us in
  Array.sort compare lats;
  let percentile q =
    let m = Array.length lats in
    if m = 0 then 0.0
    else lats.(min (m - 1) (int_of_float (q *. float_of_int (m - 1) +. 0.5)))
  in
  let mean_us =
    if Array.length lats = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 lats /. float_of_int (Array.length lats)
  in
  let throughput = if wall_s > 0.0 then float_of_int n /. wall_s else 0.0 in
  let hit_rate =
    Option.value ~default:0.0 (Ggpu_serve.Engine.hit_rate engine)
  in
  let snap = Ggpu_serve.Engine.metrics engine in
  let counter name =
    Option.value ~default:0 (Ggpu_obs.Metrics.find_counter snap name)
  in
  Printf.printf
    "replay: %d requests (seed %d, %d-deep windows, universe %d keys) on %d \
     domains\n"
    n seed batch Ggpu_serve.Workload.universe domains;
  Printf.printf
    "  %.3fs wall | %.0f req/s | p50 %.0f us | p99 %.0f us | mean %.0f us\n"
    wall_s throughput (percentile 0.50) (percentile 0.99) mean_us;
  Printf.printf
    "  cache: %.1f%% hit rate (%d hits + %d coalesced vs %d misses, %d \
     evictions)\n"
    (100.0 *. hit_rate)
    (counter "serve.cache.hit")
    (counter "serve.cache.coalesced")
    (counter "serve.cache.miss")
    (counter "serve.cache.eviction");
  Printf.printf "  artifacts: %d/%d base netlists built, %d/%d kernels compiled\n"
    (counter "serve.netlist.build")
    (counter "serve.netlist.build" + counter "serve.netlist.reuse")
    (counter "serve.kernel.compile")
    (counter "serve.kernel.compile" + counter "serve.kernel.reuse");
  (* Per-kind submit-to-response percentiles from the engine's own
     histograms — cell-exact, so `serve stats` over the same traffic
     derives the same numbers.  Captured from [snap], i.e. before the
     overhead reruns below add warm-hit observations. *)
  let latency_kinds = [ "sim"; "synth"; "perf" ] in
  let latency_hist kind =
    Ggpu_obs.Metrics.find_histogram snap ("serve.latency." ^ kind)
  in
  List.iter
    (fun kind ->
      match latency_hist kind with
      | Some h when Ggpu_obs.Metrics.hist_total h > 0 ->
          let p q = Ggpu_obs.Metrics.hist_percentile h q in
          Printf.printf
            "  latency %-5s p50<=%dus p99<=%dus p999<=%dus (n=%d)\n" kind
            (p 0.50) (p 0.99) (p 0.999)
            (Ggpu_obs.Metrics.hist_total h)
      | _ -> ())
    latency_kinds;
  (* Tracing-overhead ceiling: replay the (now fully warm) mix with the
     tracer off and on — span groups are built either way, so this
     isolates the cost of mirroring into the global buffers — and gate
     the relative slowdown.  Min of 5 reps each to shed scheduler
     noise. *)
  let replay_wall () =
    let t0 = Unix.gettimeofday () in
    let rec go = function
      | [] -> ()
      | reqs ->
          let chunk, rest = take batch reqs in
          ignore (Ggpu_serve.Engine.process engine chunk);
          go rest
    in
    go reqs;
    Unix.gettimeofday () -. t0
  in
  let min_of_reps k f =
    let rec go best k = if k = 0 then best else go (Float.min best (f ())) (k - 1) in
    go (f ()) (k - 1)
  in
  let base_s = min_of_reps 5 replay_wall in
  Ggpu_obs.Trace.enable ();
  let traced_s = min_of_reps 5 replay_wall in
  Ggpu_obs.Trace.disable ();
  Ggpu_obs.Trace.reset ();
  let trace_overhead_pct =
    if base_s > 0.0 then 100.0 *. (traced_s -. base_s) /. base_s else 0.0
  in
  Printf.printf
    "  tracing overhead: %.2f%% (warm replay %.4fs untraced, %.4fs traced)\n"
    trace_overhead_pct base_s traced_s;
  let open Ggpu_obs.Json in
  let doc =
    Obj
      [
        ("benchmark", String "serve-replay");
        ("requests", Int n);
        ("seed", Int seed);
        ("batch", Int batch);
        ("domains", Int domains);
        ("universe_keys", Int Ggpu_serve.Workload.universe);
        ("wall_s", Float wall_s);
        ("throughput_rps", Float throughput);
        ("p50_us", Float (percentile 0.50));
        ("p99_us", Float (percentile 0.99));
        ("mean_us", Float mean_us);
        ( "latency",
          Obj
            (List.map
               (fun kind ->
                 ( kind,
                   match latency_hist kind with
                   | None -> Null
                   | Some h ->
                       let p q = Ggpu_obs.Metrics.hist_percentile h q in
                       Obj
                         [
                           ("count", Int (Ggpu_obs.Metrics.hist_total h));
                           ("sum_us", Int h.Ggpu_obs.Metrics.sum);
                           ("p50_us", Int (p 0.50));
                           ("p99_us", Int (p 0.99));
                           ("p999_us", Int (p 0.999));
                         ] ))
               latency_kinds) );
        ("trace_overhead_pct", Float trace_overhead_pct);
        ( "cache",
          Obj
            [
              ("hit", Int (counter "serve.cache.hit"));
              ("coalesced", Int (counter "serve.cache.coalesced"));
              ("miss", Int (counter "serve.cache.miss"));
              ("eviction", Int (counter "serve.cache.eviction"));
              ("hit_rate", Float hit_rate);
            ] );
        ( "statuses",
          Obj [ ("ok", Int !ok); ("cached", Int !cached); ("other", Int !bad) ]
        );
        ( "artifacts",
          Obj
            [
              ("netlist_build", Int (counter "serve.netlist.build"));
              ("netlist_reuse", Int (counter "serve.netlist.reuse"));
              ("kernel_compile", Int (counter "serve.kernel.compile"));
              ("kernel_reuse", Int (counter "serve.kernel.reuse"));
            ] );
      ]
  in
  let oc = open_out serve_json_path in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" serve_json_path;
  if !bad > 0 then begin
    Printf.eprintf "serve: %d request(s) not served (rejected/expired/failed)\n"
      !bad;
    exit 1
  end;
  (* CI gate: the replay must actually exercise the cache.  Expressed in
     percent, like the other env-tunable thresholds. *)
  (match Sys.getenv_opt "SERVE_MIN_HIT_RATE" with
  | Some threshold when 100.0 *. hit_rate < float_of_string threshold ->
      Printf.eprintf "serve: hit rate %.1f%% below required %s%%\n"
        (100.0 *. hit_rate) threshold;
      exit 1
  | _ -> ());
  (* CI gate: enabling the tracer must stay close to free — the spans
     are pre-built either way, so only the buffer mirroring can cost. *)
  match Sys.getenv_opt "SERVE_MAX_TRACE_OVERHEAD_PCT" with
  | Some threshold when trace_overhead_pct > float_of_string threshold ->
      Printf.eprintf
        "serve: tracing overhead %.2f%% above allowed %s%%\n"
        trace_overhead_pct threshold;
      exit 1
  | _ -> ()

(* --- Bechamel performance benches -------------------------------------- *)

let run_perf () =
  run_perf_dse ();
  section "Bechamel: performance of the flow itself";
  let open Bechamel in
  let test_sta =
    Test.make ~name:"sta-1cu"
      (Staged.stage (fun () ->
           let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
           ignore (Ggpu_synth.Timing.analyse tech nl)))
  in
  let test_dse =
    Test.make ~name:"dse-1cu-667"
      (Staged.stage (fun () ->
           let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
           ignore (Dse.explore tech nl ~num_cus:1 ~period_ns:1.5)))
  in
  let test_dse_seed =
    Test.make ~name:"dse-1cu-667-seed"
      (Staged.stage (fun () ->
           let nl = Ggpu_rtlgen.Generate.generate_cus ~num_cus:1 in
           ignore
             (Dse.explore ~incremental:false tech nl ~num_cus:1 ~period_ns:1.5)))
  in
  let test_gpu_sim =
    Test.make ~name:"gpu-sim-copy-4k"
      (Staged.stage (fun () ->
           let w = Ggpu_kernels.Suite.copy in
           let args = w.Ggpu_kernels.Suite.mk_args ~size:4096 in
           let compiled =
             Ggpu_kernels.Codegen_fgpu.compile w.Ggpu_kernels.Suite.kernel
           in
           ignore
             (Ggpu_kernels.Run_fgpu.run compiled ~args ~global_size:4096
                ~local_size:256 ())))
  in
  let test_rv32_sim =
    Test.make ~name:"rv32-sim-copy-4k"
      (Staged.stage (fun () ->
           let w = Ggpu_kernels.Suite.copy in
           let args = w.Ggpu_kernels.Suite.mk_args ~size:4096 in
           let compiled =
             Ggpu_kernels.Codegen_rv32.compile w.Ggpu_kernels.Suite.kernel
           in
           ignore
             (Ggpu_kernels.Run_rv32.run compiled ~args ~global_size:4096
                ~local_size:256 ())))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-18s %12.0f ns/run\n" name est
        | _ -> Printf.printf "%-18s (no estimate)\n" name)
      results
  in
  List.iter benchmark
    [ test_sta; test_dse; test_dse_seed; test_gpu_sim; test_rv32_sim ]

(* --- Driver ------------------------------------------------------------- *)

let experiments =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("fig3", run_figs34);
    ("fig4", run_figs34);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("ablation-dse", run_ablation_dse);
    ("ablation-mem", run_ablation_mem);
    ("future-gmc", run_future_gmc);
    ("fi", run_fi);
    ("perf", run_perf);
    ("perf-dse", run_perf_dse);
    ("perf-place", run_perf_place);
    ("perf-sim", run_perf_sim);
    ("serve", run_serve);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ ->
        [
          "table1"; "table2"; "table3"; "fig3"; "fig5"; "fig6"; "ablation-dse";
          "ablation-mem"; "future-gmc"; "fi"; "perf"; "perf-place"; "perf-sim";
          "serve";
        ]
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested
